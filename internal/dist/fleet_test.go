package dist

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"

	"deviant/internal/core"
	"deviant/internal/obs"
	"deviant/internal/snapshot"
)

// fleetHeader and fleetSources form a six-unit corpus with cross-unit
// statistical signal (kmalloc checked in most callers, lock pairing,
// null check-then-use) so the global half of the pipeline has real
// work to merge.
const fleetHeader = `
#define NULL 0
struct dev { int count; int *buf; struct lock *lk; };
struct lock { int held; };
void *kmalloc(int n);
void kfree(void *p);
void printk(const char *fmt, ...);
void spin_lock(struct lock *l);
void spin_unlock(struct lock *l);
void panic(const char *fmt, ...);
`

func fleetSources() map[string]string {
	return map[string]string{
		"include/kernel.h": fleetHeader,
		"alpha.c": `
#include "kernel.h"
int alpha_init(struct dev *d) {
	int *b = kmalloc(16);
	if (!b)
		return -1;
	d->buf = b;
	return 0;
}
int alpha_reset(struct dev *d) {
	if (d == NULL)
		printk("reset %d\n", d->count);
	return 0;
}
`,
		"beta.c": `
#include "kernel.h"
int beta_grow(struct dev *d, int n) {
	int *b = kmalloc(n);
	if (!b)
		return -1;
	d->buf = b;
	return 0;
}
void beta_work(struct dev *d) {
	spin_lock(d->lk);
	d->count++;
	spin_unlock(d->lk);
}
`,
		"gamma.c": `
#include "kernel.h"
int gamma_open(struct dev *d) {
	int *b = kmalloc(8);
	b[0] = 1;
	return 0;
}
`,
		"delta.c": `
#include "kernel.h"
int delta_fill(struct dev *d) {
	int *b = kmalloc(32);
	if (!b)
		return -1;
	b[0] = 7;
	d->buf = b;
	return 0;
}
void delta_drop(struct dev *d) {
	kfree(d->buf);
	d->buf = NULL;
}
`,
		"epsilon.c": `
#include "kernel.h"
void eps_toggle(struct dev *d) {
	spin_lock(d->lk);
	if (d->count > 0)
		d->count--;
	spin_unlock(d->lk);
}
int eps_probe(struct dev *d) {
	if (d->buf == NULL)
		return -1;
	return d->buf[0];
}
`,
		"zeta.c": `
#include "kernel.h"
int zeta_setup(struct dev *d) {
	int *b = kmalloc(64);
	if (!b)
		return -1;
	d->buf = b;
	spin_lock(d->lk);
	d->count = 0;
	spin_unlock(d->lk);
	return 0;
}
`,
	}
}

// canon flattens everything the determinism contract covers into one
// string. Snapshot stats and timings are deliberately excluded: both
// are topology-dependent (reuse happens per worker, time is wall
// clock), documented as outside the byte-identity contract.
func canon(res *core.Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "funcs=%d lines=%d\n", res.FuncCount, res.LineCount)
	for _, e := range res.ParseErrors {
		fmt.Fprintf(&b, "perr %s\n", e.Error())
	}
	fmt.Fprintf(&b, "degraded=%v panics=%d\n", res.Degraded, res.PanicsRecovered)
	for _, q := range res.Quarantined {
		fmt.Fprintf(&b, "quar %s %s %s\n", q.Stage, q.Unit, q.Cause)
	}
	for i, r := range res.Reports.Ranked() {
		fmt.Fprintf(&b, "%4d. %s\n", i+1, r.String())
	}
	for _, p := range res.Pairs {
		fmt.Fprintf(&b, "pair %s/%s %d/%d z=%.4f\n", p.A, p.B, p.Examples(), p.Checks, p.Z)
	}
	for _, d := range res.CanFail {
		fmt.Fprintf(&b, "canfail %s %d/%d z=%.4f\n", d.Func, d.Examples(), d.Checks, d.Z)
	}
	for _, bd := range res.LockBindings {
		fmt.Fprintf(&b, "lock %s/%s %d/%d z=%.4f\n", bd.Lock, bd.Var, bd.Examples(), bd.Checks, bd.Z)
	}
	return b.String()
}

// localWorker is an in-process ShardCaller: RunShard behind a kill
// switch, with its own snapshot store — one failure-containment unit.
type localWorker struct {
	store *snapshot.Store
	down  atomic.Bool
	calls atomic.Int64
}

func (w *localWorker) Shard(ctx context.Context, req *ShardRequest, requestID string) (*ShardResponse, error) {
	w.calls.Add(1)
	if w.down.Load() {
		return nil, errors.New("worker down")
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return RunShard(req, w.store, 0)
}

// newLocalFleet builds a coordinator over n in-process workers.
func newLocalFleet(t *testing.T, n int) (*Coordinator, []*localWorker) {
	t.Helper()
	ws := make([]*localWorker, n)
	fleet := make([]Worker, n)
	for i := range ws {
		ws[i] = &localWorker{store: snapshot.NewStore(0)}
		fleet[i] = Worker{Name: fmt.Sprintf("w%d", i), Caller: ws[i]}
	}
	c, err := NewCoordinator(fleet)
	if err != nil {
		t.Fatal(err)
	}
	return c, ws
}

func baseline(t *testing.T, srcs map[string]string) string {
	t.Helper()
	res, err := core.New(core.DefaultOptions(), nil).AnalyzeSources(srcs)
	if err != nil {
		t.Fatal(err)
	}
	return canon(res)
}

// TestFleetByteIdentity is the tentpole acceptance pin: coordinator
// output over 1, 2 and 4 workers is byte-identical to a single-process
// run on the same corpus, cold and warm.
func TestFleetByteIdentity(t *testing.T) {
	srcs := fleetSources()
	want := baseline(t, srcs)
	for _, n := range []int{1, 2, 4} {
		c, ws := newLocalFleet(t, n)
		res, err := c.Run(context.Background(), srcs, core.DefaultOptions(), "t1")
		if err != nil {
			t.Fatalf("fleet(%d): %v", n, err)
		}
		if got := canon(res); got != want {
			t.Fatalf("fleet(%d) output diverged from single-process:\n--- fleet\n%s--- single\n%s", n, got, want)
		}
		if res.Degraded {
			t.Fatalf("fleet(%d): healthy run marked degraded: %v", n, res.Quarantined)
		}
		// Warm rerun: byte-identical again, now served from worker
		// snapshot stores (token retention keeps shard payloads warm).
		res2, err := c.Run(context.Background(), srcs, core.DefaultOptions(), "t2")
		if err != nil {
			t.Fatalf("fleet(%d) warm: %v", n, err)
		}
		if got := canon(res2); got != want {
			t.Fatalf("fleet(%d) warm output diverged", n)
		}
		if res2.Snapshot.UnitsReused != 6 || res2.Snapshot.UnitsParsed != 0 {
			t.Fatalf("fleet(%d) warm reuse: %+v, want all 6 units reused", n, res2.Snapshot)
		}
		total := int64(0)
		for _, w := range ws {
			total += w.calls.Load()
		}
		if total == 0 {
			t.Fatal("no worker was ever called")
		}
	}
}

// TestFleetRescatter kills one worker of four before the run: its shard
// re-scatters to survivors and the result is still byte-identical to
// single-process — not degraded, no quarantine.
func TestFleetRescatter(t *testing.T) {
	srcs := fleetSources()
	want := baseline(t, srcs)
	c, ws := newLocalFleet(t, 4)
	ws[2].down.Store(true)
	res, err := c.Run(context.Background(), srcs, core.DefaultOptions(), "t3")
	if err != nil {
		t.Fatal(err)
	}
	if res.Degraded {
		t.Fatalf("re-scatter absorbed the failure but run is degraded: %v", res.Quarantined)
	}
	if got := canon(res); got != want {
		t.Fatalf("dead-worker output diverged from single-process:\n--- fleet\n%s--- single\n%s", got, want)
	}
}

// TestFleetAllDead pins the failure floor: with every worker down the
// run completes Degraded — never an error — with one deterministic
// fleet-stage quarantine record per unit, byte-identical across runs.
func TestFleetAllDead(t *testing.T) {
	srcs := fleetSources()
	c, ws := newLocalFleet(t, 3)
	for _, w := range ws {
		w.down.Store(true)
	}
	run := func() *core.Result {
		res, err := c.Run(context.Background(), srcs, core.DefaultOptions(), "t4")
		if err != nil {
			t.Fatalf("all-dead fleet must degrade, not fail: %v", err)
		}
		return res
	}
	res := run()
	if !res.Degraded {
		t.Fatal("all-dead run not marked degraded")
	}
	if len(res.Quarantined) != 6 {
		t.Fatalf("want 6 quarantined units, got %d: %v", len(res.Quarantined), res.Quarantined)
	}
	for _, q := range res.Quarantined {
		if q.Stage != fleetStage || q.Cause != causeLost {
			t.Fatalf("unexpected quarantine record: %+v", q)
		}
	}
	if res.FuncCount != 0 || len(res.Reports.Ranked()) != 0 {
		t.Fatalf("all-dead run analyzed something: funcs=%d", res.FuncCount)
	}
	if a, b := canon(res), canon(run()); a != b {
		t.Fatalf("all-dead degradation not deterministic:\n%s\nvs\n%s", a, b)
	}
}

// corruptCaller proxies a worker and flips a byte in one unit's token
// payload, modeling disk/network corruption past TCP's checksum.
type corruptCaller struct {
	inner ShardCaller
	unit  string
}

func (c *corruptCaller) Shard(ctx context.Context, req *ShardRequest, requestID string) (*ShardResponse, error) {
	resp, err := c.inner.Shard(ctx, req, requestID)
	if err != nil {
		return nil, err
	}
	for i := range resp.Partials {
		if resp.Partials[i].Unit == c.unit && len(resp.Partials[i].Tokens) > 0 {
			resp.Partials[i].Tokens[0] ^= 0xff
		}
	}
	return resp, nil
}

// dropCaller proxies a worker and silently drops one unit's partial
// without a quarantine record — a malformed response.
type dropCaller struct {
	inner ShardCaller
	unit  string
}

func (c *dropCaller) Shard(ctx context.Context, req *ShardRequest, requestID string) (*ShardResponse, error) {
	resp, err := c.inner.Shard(ctx, req, requestID)
	if err != nil {
		return nil, err
	}
	kept := resp.Partials[:0]
	for _, p := range resp.Partials {
		if p.Unit != c.unit {
			kept = append(kept, p)
		}
	}
	resp.Partials = kept
	return resp, nil
}

// TestFleetCorruptAndMissingPartials pins the failure matrix rows for
// corrupt and missing partials: the affected unit quarantines with its
// fixed deterministic cause, the rest of the corpus analyzes normally.
func TestFleetCorruptAndMissingPartials(t *testing.T) {
	srcs := fleetSources()
	for _, tc := range []struct {
		name  string
		wrap  func(ShardCaller) ShardCaller
		cause string
	}{
		{"corrupt", func(s ShardCaller) ShardCaller { return &corruptCaller{inner: s, unit: "gamma.c"} }, causeCorrupt},
		{"missing", func(s ShardCaller) ShardCaller { return &dropCaller{inner: s, unit: "gamma.c"} }, causeMissing},
	} {
		t.Run(tc.name, func(t *testing.T) {
			w := &localWorker{store: snapshot.NewStore(0)}
			c, err := NewCoordinator([]Worker{{Name: "w0", Caller: tc.wrap(w)}})
			if err != nil {
				t.Fatal(err)
			}
			res, err := c.Run(context.Background(), srcs, core.DefaultOptions(), "t5")
			if err != nil {
				t.Fatalf("%s partial must degrade, not fail: %v", tc.name, err)
			}
			if !res.Degraded {
				t.Fatal("not degraded")
			}
			if len(res.Quarantined) != 1 {
				t.Fatalf("want 1 record, got %v", res.Quarantined)
			}
			q := res.Quarantined[0]
			if q.Stage != fleetStage || q.Unit != "gamma.c" || q.Cause != tc.cause {
				t.Fatalf("record %+v, want fleet/gamma.c/%s", q, tc.cause)
			}
			if res.FuncCount == 0 {
				t.Fatal("healthy units were not analyzed")
			}
		})
	}
}

// TestFleetMetrics checks the instrumentation satellite: scatter
// latency histograms exist per worker, and the re-scatter/lost counters
// and health gauge move when workers die.
func TestFleetMetrics(t *testing.T) {
	srcs := fleetSources()
	c, ws := newLocalFleet(t, 3)
	reg := obs.NewRegistry()
	c.RegisterMetrics(reg)

	if _, err := c.Run(context.Background(), srcs, core.DefaultOptions(), "m1"); err != nil {
		t.Fatal(err)
	}
	if got := c.m.healthy.Value(); got != 3 {
		t.Fatalf("healthy gauge %v, want 3", got)
	}
	ws[0].down.Store(true)
	ws[1].down.Store(true)
	ws[2].down.Store(true)
	if _, err := c.Run(context.Background(), srcs, core.DefaultOptions(), "m2"); err != nil {
		t.Fatal(err)
	}
	if got := c.m.healthy.Value(); got != 0 {
		t.Fatalf("healthy gauge %v after all-dead run, want 0", got)
	}
	if got := c.m.lost.Value(); got != 6 {
		t.Fatalf("lost counter %v, want 6", got)
	}
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"deviantd_fleet_scatter_seconds", "deviantd_fleet_workers", "deviantd_fleet_lost_units_total"} {
		if !strings.Contains(sb.String(), want) {
			t.Fatalf("metrics output missing %s", want)
		}
	}
}
