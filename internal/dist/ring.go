package dist

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
	"strconv"
)

// vnodesPerWorker is how many points each worker contributes to the
// hash ring. More virtual nodes smooth the load split (the expected
// share of a fleet of n is 1/n with variance shrinking as vnodes grow)
// and, more importantly here, bound how much of the corpus moves when
// the fleet changes: removing one of n workers reassigns only that
// worker's ~1/n arc, so every other worker's snapshot cache stays warm.
const vnodesPerWorker = 64

// ringPoint is one virtual node: a position on the ring owned by a
// worker.
type ringPoint struct {
	hash uint64
	name string
}

// ring assigns content digests to workers by consistent hashing. It is
// immutable after construction; exclusion (dead workers) is expressed
// per-lookup so one ring serves both scatter rounds.
type ring struct {
	points []ringPoint
}

// pointHash maps a string to a ring position. SHA-256 rather than a
// fast non-cryptographic hash because placement must be identical on
// every machine and every Go version, forever: a placement change
// silently invalidates every worker's snapshot locality.
func pointHash(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

// newRing builds the ring for the named workers. Names must be unique;
// placement depends only on the set of names, not their order.
func newRing(names []string) *ring {
	pts := make([]ringPoint, 0, len(names)*vnodesPerWorker)
	for _, n := range names {
		for v := 0; v < vnodesPerWorker; v++ {
			pts = append(pts, ringPoint{hash: pointHash(n + "#" + strconv.Itoa(v)), name: n})
		}
	}
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].hash != pts[j].hash {
			return pts[i].hash < pts[j].hash
		}
		// A 64-bit collision between distinct names is vanishingly rare
		// but must still order deterministically.
		return pts[i].name < pts[j].name
	})
	return &ring{points: pts}
}

// owner returns the worker that owns digest: the first ring point at or
// after the digest's position, wrapping around.
func (r *ring) owner(digest string) string {
	return r.ownerExcluding(digest, nil)
}

// ownerExcluding returns the owner of digest when the workers in dead
// are unavailable: the walk continues clockwise past excluded points,
// which is exactly where the units would live had the dead workers
// never been in the fleet. Returns "" when every worker is dead.
func (r *ring) ownerExcluding(digest string, dead map[string]bool) string {
	n := len(r.points)
	if n == 0 {
		return ""
	}
	h := pointHash(digest)
	i := sort.Search(n, func(i int) bool { return r.points[i].hash >= h })
	for k := 0; k < n; k++ {
		p := r.points[(i+k)%n]
		if !dead[p.name] {
			return p.name
		}
	}
	return ""
}
