package dist

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"deviant/internal/core"
	"deviant/internal/obs"
	"deviant/internal/snapshot"
)

// TestSetWorkersEpochAndByteIdentity reshapes the fleet live — shrink
// to two members, grow back to four — and pins the tentpole contract:
// every reload bumps the epoch, and output stays byte-identical to
// single-process at every epoch.
func TestSetWorkersEpochAndByteIdentity(t *testing.T) {
	srcs := fleetSources()
	want := baseline(t, srcs)
	c, ws := newLocalFleet(t, 4)
	if got := c.Epoch(); got != 1 {
		t.Fatalf("boot epoch %d, want 1", got)
	}
	run := func(label string) {
		t.Helper()
		res, err := c.Run(context.Background(), srcs, core.DefaultOptions(), label)
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		if res.Degraded {
			t.Fatalf("%s: degraded: %v", label, res.Quarantined)
		}
		if got := canon(res); got != want {
			t.Fatalf("%s: output diverged from single-process", label)
		}
	}
	run("epoch1")

	// Shrink to two members.
	small := []Worker{{Name: "w0", Caller: ws[0]}, {Name: "w1", Caller: ws[1]}}
	if err := c.SetWorkers(small); err != nil {
		t.Fatal(err)
	}
	if got := c.Epoch(); got != 2 {
		t.Fatalf("epoch after shrink %d, want 2", got)
	}
	if got := c.Size(); got != 2 {
		t.Fatalf("size after shrink %d, want 2", got)
	}
	callsBefore := ws[3].calls.Load()
	run("epoch2")
	if ws[3].calls.Load() != callsBefore {
		t.Fatal("removed worker w3 was called after SetWorkers")
	}

	// Grow back to four.
	big := make([]Worker, len(ws))
	for i := range ws {
		big[i] = Worker{Name: fmt.Sprintf("w%d", i), Caller: ws[i]}
	}
	if err := c.SetWorkers(big); err != nil {
		t.Fatal(err)
	}
	if got := c.Epoch(); got != 3 {
		t.Fatalf("epoch after grow %d, want 3", got)
	}
	run("epoch3")
	if st := c.Status(); st.Epoch != c.Epoch() || st.Size != 4 {
		t.Fatalf("status %+v out of sync with epoch %d", st, c.Epoch())
	}
}

// TestSetWorkersValidationAndCarryOver rejects invalid member sets and
// carries eviction state across a reload for retained names.
func TestSetWorkersValidationAndCarryOver(t *testing.T) {
	c, ws := newLocalFleet(t, 3)
	if err := c.SetWorkers(nil); err == nil {
		t.Fatal("empty member set accepted")
	}
	if err := c.SetWorkers([]Worker{
		{Name: "dup", Caller: ws[0]}, {Name: "dup", Caller: ws[1]},
	}); err == nil {
		t.Fatal("duplicate names accepted")
	}
	if err := c.SetWorkers([]Worker{{Name: "", Caller: ws[0]}}); err == nil {
		t.Fatal("empty name accepted")
	}
	// A failed reload must not disturb the current view.
	if got := c.Epoch(); got != 1 {
		t.Fatalf("failed reloads moved the epoch to %d", got)
	}

	// Evict w1 via a failed scatter outcome, then reload keeping w1: it
	// stays evicted; dropping and re-adding it would reset that state.
	c.noteScatter("w1", 0, errors.New("dial refused"))
	if down := c.snapshotDown(); !down["w1"] {
		t.Fatalf("w1 not evicted after failed scatter: %v", down)
	}
	if err := c.SetWorkers([]Worker{
		{Name: "w0", Caller: ws[0]}, {Name: "w1", Caller: ws[1]},
	}); err != nil {
		t.Fatal(err)
	}
	if down := c.snapshotDown(); !down["w1"] {
		t.Fatalf("eviction state lost across reload: %v", down)
	}
}

// flakyProbeWorker fails its first n probe attempts, then recovers.
type flakyProbeWorker struct {
	localWorker
	failsLeft int
}

func (p *flakyProbeWorker) ProbeHealth(ctx context.Context) (obs.Build, error) {
	if p.failsLeft > 0 {
		p.failsLeft--
		return obs.Build{}, errors.New("probe: connection refused")
	}
	return obs.Build{Version: "v-test"}, nil
}

func (p *flakyProbeWorker) ScrapeMetrics(ctx context.Context) ([]obs.Sample, error) {
	return nil, nil
}

// TestProbeRetryAbsorbsSingleDrop pins the anti-flap satellite: one
// dropped probe is retried within the same round, so the member is
// neither evicted nor does the epoch move.
func TestProbeRetryAbsorbsSingleDrop(t *testing.T) {
	w := &flakyProbeWorker{failsLeft: 1}
	w.store = snapshot.NewStore(0)
	c, err := NewCoordinator([]Worker{{Name: "w0", Caller: w}})
	if err != nil {
		t.Fatal(err)
	}
	c.ProbeOnce(context.Background(), time.Second)
	if down := c.snapshotDown(); len(down) != 0 {
		t.Fatalf("single dropped probe flapped membership: %v", down)
	}
	if got := c.Epoch(); got != 1 {
		t.Fatalf("epoch moved to %d on an absorbed probe drop", got)
	}
	if st := c.Status(); st.Healthy != 1 {
		t.Fatalf("status %+v, want healthy", st)
	}
}

// TestProbeEvictionAndReadmissionEpochs drives a member down past the
// probe retry and back up, checking both membership transitions bump
// the epoch and move the churn counters.
func TestProbeEvictionAndReadmissionEpochs(t *testing.T) {
	w := &flakyProbeWorker{failsLeft: 2} // first attempt + its retry
	w.store = snapshot.NewStore(0)
	c, err := NewCoordinator([]Worker{{Name: "w0", Caller: w}})
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	c.RegisterMetrics(reg)

	c.ProbeOnce(context.Background(), time.Second)
	if down := c.snapshotDown(); !down["w0"] {
		t.Fatalf("member not evicted after probe + retry failed: %v", down)
	}
	if got := c.Epoch(); got != 2 {
		t.Fatalf("epoch %d after eviction, want 2", got)
	}
	if got := c.m.evictions.Value(); got != 1 {
		t.Fatalf("evictions counter %v, want 1", got)
	}

	c.ProbeOnce(context.Background(), time.Second) // recovered now
	if down := c.snapshotDown(); len(down) != 0 {
		t.Fatalf("recovered member not re-admitted: %v", down)
	}
	if got := c.Epoch(); got != 3 {
		t.Fatalf("epoch %d after re-admission, want 3", got)
	}
	if got := c.m.readmissions.Value(); got != 1 {
		t.Fatalf("readmissions counter %v, want 1", got)
	}
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"deviantd_fleet_epoch", "deviantd_fleet_evictions_total", "deviantd_fleet_readmissions_total"} {
		if !strings.Contains(sb.String(), want) {
			t.Fatalf("metrics output missing %s", want)
		}
	}
}

// TestMembershipJournalEvent pins that every run journals the epoch it
// is pinned to and the active member set, in deterministic order.
func TestMembershipJournalEvent(t *testing.T) {
	srcs := fleetSources()
	c, _ := newLocalFleet(t, 2)
	var sb strings.Builder
	opts := core.DefaultOptions()
	opts.Journal = obs.NewJournal(&sb, "memb-test")
	if _, err := c.Run(context.Background(), srcs, opts, "memb-test"); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, `"event":"membership"`) {
		t.Fatalf("journal missing membership event:\n%s", out)
	}
	if !strings.Contains(out, `"epoch":"1"`) || !strings.Contains(out, `"active":"w0,w1"`) {
		t.Fatalf("membership event missing epoch/active attrs:\n%s", out)
	}
}
