package dist

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"deviant/internal/obs"
)

// view is one immutable epoch of fleet membership: the configured
// member set, its hash ring, and the members currently evicted from
// placement. Run snapshots exactly one view, so a whole run sees one
// epoch — placement is a pure function of (epoch member set, unit
// digests), which pins output bytes per epoch. Any membership change
// (config replacement, eviction, re-admission) publishes a new view
// with a bumped epoch; in-flight runs keep their old one.
type view struct {
	epoch   uint64
	workers []Worker // configured members, sorted by name
	byName  map[string]ShardCaller
	ring    *ring
	down    map[string]bool // evicted members; never mutated after publish
}

// active returns the sorted names of members not currently evicted.
func (v *view) active() []string {
	out := make([]string, 0, len(v.workers))
	for _, w := range v.workers {
		if !v.down[w.Name] {
			out = append(out, w.Name)
		}
	}
	return out
}

// buildView validates workers and assembles an immutable view at the
// given epoch, carrying eviction flags for retained names.
func buildView(workers []Worker, epoch uint64, down map[string]bool) (*view, error) {
	if len(workers) == 0 {
		return nil, errors.New("dist: fleet has no workers")
	}
	byName := make(map[string]ShardCaller, len(workers))
	sorted := make([]Worker, len(workers))
	copy(sorted, workers)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })
	names := make([]string, 0, len(sorted))
	for _, w := range sorted {
		if w.Name == "" {
			return nil, errors.New("dist: worker with empty name")
		}
		if w.Caller == nil {
			return nil, fmt.Errorf("dist: worker %q has no caller", w.Name)
		}
		if _, dup := byName[w.Name]; dup {
			return nil, fmt.Errorf("dist: duplicate worker name %q", w.Name)
		}
		byName[w.Name] = w.Caller
		names = append(names, w.Name)
	}
	kept := make(map[string]bool)
	for name := range down {
		if _, ok := byName[name]; ok {
			kept[name] = true
		}
	}
	return &view{epoch: epoch, workers: sorted, byName: byName, ring: newRing(names), down: kept}, nil
}

// currentView returns the membership view runs should snapshot.
func (c *Coordinator) currentView() *view {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.view
}

// Epoch returns the current membership epoch. Epoch 1 is the boot
// configuration; every eviction, re-admission, or SetWorkers bumps it.
func (c *Coordinator) Epoch() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.view.epoch
}

// snapshotDown copies the current view's evicted set.
func (c *Coordinator) snapshotDown() map[string]bool {
	v := c.currentView()
	if len(v.down) == 0 {
		return nil
	}
	out := make(map[string]bool, len(v.down))
	for name := range v.down {
		out[name] = true
	}
	return out
}

// SetWorkers replaces the configured member set without restarting the
// coordinator — the live half of `-workers-list` (SIGHUP or
// POST /v1/fleet/workers). Health state and eviction status carry over
// for retained names; new members join healthy; removed members drop
// all state. Publishes a new epoch even if the set is unchanged, so a
// reload is always observable.
func (c *Coordinator) SetWorkers(workers []Worker) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	v, err := buildView(workers, c.view.epoch+1, c.view.down)
	if err != nil {
		return err
	}
	status := make(map[string]*workerState, len(v.workers))
	for _, w := range v.workers {
		if ws, ok := c.status[w.Name]; ok {
			status[w.Name] = ws
		} else {
			status[w.Name] = &workerState{healthy: true}
		}
	}
	c.view = v
	c.status = status
	c.noteEpochLocked()
	c.setHealthyGaugeLocked()
	return nil
}

// evictLocked removes name from placement: a new view is published with
// name in the down set and a bumped epoch. No-op if already evicted.
func (c *Coordinator) evictLocked(name string) {
	if c.view.down[name] {
		return
	}
	down := make(map[string]bool, len(c.view.down)+1)
	for n := range c.view.down {
		down[n] = true
	}
	down[name] = true
	next := *c.view
	next.epoch++
	next.down = down
	c.view = &next
	if c.m != nil {
		c.m.evictions.Add(1)
	}
	c.noteEpochLocked()
}

// readmitLocked returns an evicted member to placement under a new
// epoch. No-op if not currently evicted.
func (c *Coordinator) readmitLocked(name string) {
	if !c.view.down[name] {
		return
	}
	down := make(map[string]bool, len(c.view.down))
	for n := range c.view.down {
		if n != name {
			down[n] = true
		}
	}
	next := *c.view
	next.epoch++
	next.down = down
	c.view = &next
	if c.m != nil {
		c.m.readmissions.Add(1)
	}
	c.noteEpochLocked()
}

func (c *Coordinator) noteEpochLocked() {
	if c.m != nil {
		c.m.epoch.Set(float64(c.view.epoch))
		c.m.size.Set(float64(len(c.view.workers)))
	}
}

// journalMembership logs the epoch a run is pinned to and its active
// member set, in sorted order so journal bytes are deterministic for a
// given epoch.
func journalMembership(j *obs.Journal, v *view) {
	if j == nil {
		return
	}
	j.Event("membership",
		obs.A("epoch", strconv.FormatUint(v.epoch, 10)),
		obs.A("size", strconv.Itoa(len(v.workers))),
		obs.A("active", strings.Join(v.active(), ",")))
}
