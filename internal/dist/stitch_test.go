package dist

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strings"
	"testing"
	"time"

	"deviant/internal/core"
	"deviant/internal/obs"
	"deviant/internal/snapshot"
)

// unitFiles flattens the file= attributes of every imported "unit" span
// into one sorted list: the fleet-wide frontend work, one entry per
// parsed translation unit, independent of which worker parsed it.
func unitFiles(tr *obs.Tracer) []string {
	var files []string
	for _, p := range tr.Imported() {
		for _, s := range p.Spans {
			if s.Name != "unit" {
				continue
			}
			for _, a := range s.Attrs {
				if a.Key == "file" {
					files = append(files, a.Value)
				}
			}
		}
	}
	sort.Strings(files)
	return files
}

// runTraced is one coordinator run under a fresh tracer.
func runTraced(t *testing.T, c *Coordinator, srcs map[string]string, id string) (*obs.Tracer, *core.Result) {
	t.Helper()
	opts := core.DefaultOptions()
	tr := obs.NewTracer()
	opts.Tracer = tr
	res, err := c.Run(context.Background(), srcs, opts, id)
	if err != nil {
		t.Fatal(err)
	}
	return tr, res
}

// TestFleetStitchDeterminism pins the shape-independent half of the
// stitched trace: across fleet shapes 1, 2 and 4, cold and warm, the
// set of per-unit frontend spans gathered from every worker lane is
// exactly the corpus — each translation unit parsed (or reused) once,
// somewhere — and every called worker contributes exactly one process
// with exactly one "shard" root span. Which worker a unit lands on and
// how long spans take are topology- and wall-clock-dependent by design,
// so only names, attrs and counts are compared.
func TestFleetStitchDeterminism(t *testing.T) {
	srcs := fleetSources()
	var wantUnits []string
	for name := range srcs {
		if strings.HasSuffix(name, ".c") {
			wantUnits = append(wantUnits, name)
		}
	}
	sort.Strings(wantUnits)

	for _, n := range []int{1, 2, 4} {
		c, _ := newLocalFleet(t, n)
		for _, id := range []string{"cold", "warm"} {
			tr, _ := runTraced(t, c, srcs, fmt.Sprintf("stitch-%d-%s", n, id))
			if got := unitFiles(tr); !equalStrings(got, wantUnits) {
				t.Fatalf("fleet(%d) %s: stitched unit spans = %v, want %v", n, id, got, wantUnits)
			}
			imported := tr.Imported()
			if len(imported) == 0 || len(imported) > n {
				t.Fatalf("fleet(%d) %s: %d imported processes, want 1..%d", n, id, len(imported), n)
			}
			for _, p := range imported {
				shards := 0
				for _, s := range p.Spans {
					if s.Name == "shard" {
						shards++
					}
					if s.EndNs < s.StartNs {
						t.Fatalf("fleet(%d) %s: span %q ends before it starts", n, id, s.Name)
					}
				}
				if shards != 1 {
					t.Fatalf("fleet(%d) %s: worker %s has %d shard spans, want 1", n, id, p.Name, shards)
				}
				if p.Offset < 0 {
					t.Fatalf("fleet(%d) %s: worker %s stitched at negative offset %v", n, id, p.Name, p.Offset)
				}
			}
			// The coordinator's own lane holds the scatter spans (one per
			// called worker) and the merged global half.
			scatters, merges := 0, 0
			for _, s := range tr.Spans() {
				switch s.Name {
				case "scatter":
					scatters++
				case "analyze-parsed":
					merges++
				}
			}
			if scatters != len(imported) || merges != 1 {
				t.Fatalf("fleet(%d) %s: %d scatter spans for %d workers, %d merges", n, id, scatters, len(imported), merges)
			}
		}
	}
}

// TestStitchedChromeTraceLanes renders a stitched 3-worker trace and
// checks the Perfetto contract structurally: valid JSON, one
// process_name metadata record for the coordinator plus one per called
// worker (distinct pids), and every span event's pid belongs to one of
// those processes — worker lanes can never collide with coordinator
// lanes, whatever tids the workers used.
func TestStitchedChromeTraceLanes(t *testing.T) {
	srcs := fleetSources()
	c, _ := newLocalFleet(t, 3)
	tr, _ := runTraced(t, c, srcs, "lanes")

	var buf strings.Builder
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var trace struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			Pid  int               `json:"pid"`
			Tid  int               `json:"tid"`
			Ts   float64           `json:"ts"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(buf.String()), &trace); err != nil {
		t.Fatalf("stitched trace is not valid JSON: %v", err)
	}
	events := trace.TraceEvents

	lanes := map[int]string{} // pid -> process name
	for _, e := range events {
		if e.Ph == "M" && e.Name == "process_name" {
			if prev, dup := lanes[e.Pid]; dup {
				t.Fatalf("pid %d named twice: %q and %q", e.Pid, prev, e.Args["name"])
			}
			lanes[e.Pid] = e.Args["name"]
		}
	}
	want := 1 + len(tr.Imported())
	if len(lanes) != want {
		t.Fatalf("%d process lanes, want %d (coordinator + every called worker): %v", len(lanes), want, lanes)
	}
	if lanes[1] != obs.CoordinatorProcessName {
		t.Fatalf("pid 1 is %q, want %q", lanes[1], obs.CoordinatorProcessName)
	}
	for _, e := range events {
		if e.Ph == "M" {
			continue
		}
		if _, ok := lanes[e.Pid]; !ok {
			t.Fatalf("span %q on unnamed pid %d", e.Name, e.Pid)
		}
		if e.Ts < 0 {
			t.Fatalf("span %q at negative ts %f", e.Name, e.Ts)
		}
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// probeWorker is a localWorker that also answers probes, so ProbeOnce's
// type assertion on the caller finds it.
type probeWorker struct {
	localWorker
	build   obs.Build
	sick    bool
	samples []obs.Sample
}

func (p *probeWorker) ProbeHealth(ctx context.Context) (obs.Build, error) {
	if p.sick {
		return obs.Build{}, errors.New("probe: connection refused")
	}
	return p.build, nil
}

func (p *probeWorker) ScrapeMetrics(ctx context.Context) ([]obs.Sample, error) {
	if p.sick {
		return nil, errors.New("probe: connection refused")
	}
	return p.samples, nil
}

// TestProbeOnceFleetStatus drives ProbeOnce against a half-sick fleet
// and checks /v1/fleet/status's data source: per-worker health flips,
// build identity lands on healthy workers, the down set steers
// placement, and the deterministic failure string replaces transport
// detail.
func TestProbeOnceFleetStatus(t *testing.T) {
	w0 := &probeWorker{build: obs.Build{Version: "v1.2.3", GoVersion: "go1.23"},
		samples: []obs.Sample{{Name: "deviantd_requests_total", Value: 4}}}
	w1 := &probeWorker{sick: true}
	c, err := NewCoordinator([]Worker{{Name: "w0", Caller: w0}, {Name: "w1", Caller: w1}})
	if err != nil {
		t.Fatal(err)
	}
	c.ProbeOnce(context.Background(), time.Second)

	st := c.Status()
	if st.Size != 2 || st.Healthy != 1 {
		t.Fatalf("status = %+v, want size 2 healthy 1", st)
	}
	byName := map[string]WorkerStatus{}
	for _, w := range st.Workers {
		byName[w.Name] = w
	}
	if got := byName["w0"]; !got.Healthy || got.Build == nil || got.Build.Version != "v1.2.3" ||
		got.LastError != "" || got.LastProbe == "" {
		t.Fatalf("w0 = %+v", got)
	}
	if got := byName["w1"]; got.Healthy || got.LastError != "health probe failed" {
		t.Fatalf("w1 = %+v, want unhealthy with the fixed probe-failure string", got)
	}
	down := c.snapshotDown()
	if !down["w1"] || down["w0"] {
		t.Fatalf("down set = %v, want only w1", down)
	}

	// Recovery: the next probe round clears the down mark.
	w1.sick = false
	c.ProbeOnce(context.Background(), time.Second)
	if st := c.Status(); st.Healthy != 2 {
		t.Fatalf("after recovery: %+v", st)
	}
	if down := c.snapshotDown(); len(down) != 0 {
		t.Fatalf("down set after recovery = %v, want empty", down)
	}
}

// TestDownSetSteersPlacement pins that a probed-down worker receives no
// round-1 shard, while output stays byte-identical to single-process —
// placement is a cache/latency decision, never a correctness one.
func TestDownSetSteersPlacement(t *testing.T) {
	srcs := fleetSources()
	want := baseline(t, srcs)
	w0 := &probeWorker{}
	w0.store = snapshot.NewStore(0)
	w1 := &probeWorker{sick: true}
	w1.store = snapshot.NewStore(0)
	c, err := NewCoordinator([]Worker{{Name: "w0", Caller: w0}, {Name: "w1", Caller: w1}})
	if err != nil {
		t.Fatal(err)
	}
	c.ProbeOnce(context.Background(), time.Second)

	res, err := c.Run(context.Background(), srcs, core.DefaultOptions(), "steer")
	if err != nil {
		t.Fatal(err)
	}
	if got := canon(res); got != want {
		t.Fatalf("steered output diverged from single-process:\n--- fleet\n%s--- single\n%s", got, want)
	}
	if n := w1.calls.Load(); n != 0 {
		t.Fatalf("down worker w1 was called %d times during placement steering", n)
	}
	if n := w0.calls.Load(); n == 0 {
		t.Fatal("surviving worker w0 was never called")
	}
}

// TestFederatedMetrics checks the scrape half of federation: worker
// samples republish under fleet_ names with a worker label, and
// already-federated or worker-labeled series are skipped so a
// coordinator scraping itself (or another coordinator) cannot recurse.
func TestFederatedMetrics(t *testing.T) {
	c, _ := newLocalFleet(t, 2)
	reg := obs.NewRegistry()
	c.RegisterMetrics(reg)
	c.federate("w0", []obs.Sample{
		{Name: "deviantd_requests_total", Labels: []obs.Label{{Name: "endpoint", Value: "shard"}}, Value: 7},
		{Name: "go_goroutines", Value: 12},
		{Name: "fleet_go_goroutines", Labels: []obs.Label{{Name: "worker", Value: "wX"}}, Value: 99},
	})
	var text strings.Builder
	if err := reg.WritePrometheus(&text); err != nil {
		t.Fatal(err)
	}
	out := text.String()
	for _, want := range []string{
		`fleet_deviantd_requests_total{endpoint="shard",worker="w0"} 7`,
		`fleet_go_goroutines{worker="w0"} 12`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("federated output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "fleet_fleet_") || strings.Contains(out, `worker="wX"`) {
		t.Fatalf("already-federated sample was re-federated:\n%s", out)
	}
}
