package dist

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"strconv"
	"time"

	"deviant/internal/fault"
	"deviant/internal/obs"
)

// NetPoint is the failpoint name the shard transport consults before
// and after every worker call. Chaos harnesses arm it with
// fault.ArmNet(NetPoint, workerName, ...) to inject drop, delay,
// corrupt, truncate and duplicate faults on the coordinator↔worker
// wire.
const NetPoint = "shard-net"

// errDropped is the injected transport failure for fault.NetDrop.
var errDropped = errors.New("dist: shard call dropped (injected)")

// TransportConfig tunes the shard-call path between coordinator and
// workers. The zero value means library defaults (see normalize).
type TransportConfig struct {
	// CallTimeout bounds each individual shard attempt; a straggler
	// attempt is abandoned and retried. Zero means no per-attempt bound
	// beyond the run context.
	CallTimeout time.Duration
	// Retries is how many extra attempts follow a failed or invalid
	// first attempt, against the same worker. Negative disables retry.
	Retries int
	// RetryBackoff is the sleep before the first retry, doubling per
	// attempt.
	RetryBackoff time.Duration
	// HedgeAfter, when positive, races a straggling shard call against
	// one hedged attempt to the unit's next ring owner after this long.
	// First valid response wins; output bytes cannot differ because
	// every worker computes identical partials. Zero disables hedging.
	HedgeAfter time.Duration
}

// defaultTransport is the boot configuration: one retry with a small
// backoff absorbs transient wire faults, no per-attempt timeout, no
// hedging (hedging moves shard work between snapshot caches, so it is
// opt-in).
func defaultTransport() TransportConfig {
	return TransportConfig{Retries: 1, RetryBackoff: 25 * time.Millisecond}
}

// normalize fills unset fields with defaults a caller almost never
// wants to zero out.
func (tc TransportConfig) normalize() TransportConfig {
	if tc.Retries < 0 {
		tc.Retries = 0
	}
	if tc.RetryBackoff <= 0 {
		tc.RetryBackoff = 25 * time.Millisecond
	}
	return tc
}

// SetTransport replaces the shard transport configuration. Takes effect
// for the next Run; in-flight runs keep the config they started with.
func (c *Coordinator) SetTransport(tc TransportConfig) {
	c.mu.Lock()
	c.tc = tc.normalize()
	c.mu.Unlock()
}

func (c *Coordinator) transport() TransportConfig {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.tc
}

// applyNetFault mutates resp according to an armed response-side fault.
// Corruption flips a byte in the first non-empty token payload,
// truncation drops the last partial, duplication appends a copy of
// every partial (benign: the merge index is idempotent for identical
// content).
func applyNetFault(f fault.NetFault, resp *ShardResponse) {
	if resp == nil {
		return
	}
	switch f.Action {
	case fault.NetCorrupt:
		for i := range resp.Partials {
			if len(resp.Partials[i].Tokens) > 0 {
				resp.Partials[i].Tokens[0] ^= 0xff
				return
			}
		}
	case fault.NetTruncate:
		if n := len(resp.Partials); n > 0 {
			resp.Partials = resp.Partials[:n-1]
		}
	case fault.NetDuplicate:
		resp.Partials = append(resp.Partials, resp.Partials...)
	}
}

// validShard reports whether resp structurally answers req: every
// requested unit is covered by a checksum-clean partial or a quarantine
// record (a "*" record covers the whole shard), and no partial's token
// payload fails its SHA-256. Validation is integrity only — it never
// inspects analysis content — so a failed check means the bytes on the
// wire are not what the worker sent, exactly what a retry can fix.
func validShard(req *ShardRequest, resp *ShardResponse) bool {
	if resp == nil {
		return false
	}
	ok := make(map[string]bool, len(resp.Partials))
	for i := range resp.Partials {
		p := &resp.Partials[i]
		s := sha256.Sum256(p.Tokens)
		if hex.EncodeToString(s[:]) != p.Sum {
			return false
		}
		ok[p.Unit] = true
	}
	for _, rec := range resp.Quarantined {
		ok[rec.Unit] = true
	}
	for _, u := range req.Units {
		if !ok[u] && !ok["*"] {
			return false
		}
	}
	return true
}

// sleepCtx waits d or until ctx is done, whichever first.
func sleepCtx(ctx context.Context, d time.Duration) {
	if d <= 0 {
		return
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}

// attemptShard performs one shard call to name with chaos interposed:
// an armed drop fails the call, a delay holds it, and the
// corrupt/truncate/duplicate classes mangle the response after it
// returns — modeling faults on the wire, not in the worker.
func (c *Coordinator) attemptShard(ctx context.Context, v *view, name string, req *ShardRequest, requestID string, tc TransportConfig) (*ShardResponse, error) {
	var post *fault.NetFault
	if f, armed := fault.TakeNet(NetPoint, name); armed {
		switch f.Action {
		case fault.NetDrop:
			return nil, errDropped
		case fault.NetDelay:
			sleepCtx(ctx, f.Delay)
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		default:
			post = &f
		}
	}
	actx := ctx
	var cancel context.CancelFunc
	if tc.CallTimeout > 0 {
		actx, cancel = context.WithTimeout(ctx, tc.CallTimeout)
		defer cancel()
	}
	resp, err := v.byName[name].Shard(actx, req, requestID)
	if err != nil {
		return nil, err
	}
	if post != nil {
		applyNetFault(*post, resp)
	}
	return resp, nil
}

// callShardRetrying runs the attempt loop against one worker: transport
// errors and integrity-invalid responses are retried with doubling
// backoff. A final response that is present but still invalid is
// returned as-is rather than discarded — the merge quarantines exactly
// the affected units (causeCorrupt/causeMissing), which contains a
// persistently mangling link to per-unit loss instead of whole-shard
// loss.
func (c *Coordinator) callShardRetrying(ctx context.Context, v *view, name string, req *ShardRequest, requestID string, tc TransportConfig, journal *obs.Journal) (*ShardResponse, error) {
	var resp *ShardResponse
	var err error
	for try := 0; try <= tc.Retries; try++ {
		if try > 0 {
			if c.m != nil {
				c.m.retries.Add(1)
			}
			journal.Event("shard_retry",
				obs.A("worker", name), obs.A("attempt", strconv.Itoa(try+1)))
			sleepCtx(ctx, tc.RetryBackoff<<(try-1))
		}
		if e := ctx.Err(); e != nil {
			// The run's own deadline, not the worker's failure; stop
			// burning attempts.
			if resp == nil && err == nil {
				err = e
			}
			break
		}
		resp, err = c.attemptShard(ctx, v, name, req, requestID, tc)
		if err == nil && validShard(req, resp) {
			return resp, nil
		}
	}
	return resp, err
}

// hedgeTarget picks the worker a straggling shard would be hedged to:
// the next ring owner for the shard's first unit, past the primary,
// evicted members and workers already known dead this run.
func hedgeTarget(v *view, primary string, req *ShardRequest) string {
	if len(req.Units) == 0 {
		return ""
	}
	excl := make(map[string]bool, len(v.down)+1)
	for n := range v.down {
		excl[n] = true
	}
	excl[primary] = true
	return v.ring.ownerExcluding(unitDigest(req.Sources[req.Units[0]]), excl)
}

// callShard is the shard transport entry point: the retrying call,
// optionally raced against one hedged attempt to the next ring owner
// when the primary straggles past HedgeAfter. The first valid response
// wins — worker partials are deterministic, so the winner cannot change
// output bytes, only tail latency.
func (c *Coordinator) callShard(ctx context.Context, v *view, name string, req *ShardRequest, requestID string, journal *obs.Journal) (*ShardResponse, error) {
	tc := c.transport()
	if tc.HedgeAfter <= 0 {
		return c.callShardRetrying(ctx, v, name, req, requestID, tc, journal)
	}
	alt := hedgeTarget(v, name, req)
	if alt == "" {
		return c.callShardRetrying(ctx, v, name, req, requestID, tc, journal)
	}
	type result struct {
		resp  *ShardResponse
		err   error
		hedge bool
	}
	ch := make(chan result, 2)
	go func() {
		r, e := c.callShardRetrying(ctx, v, name, req, requestID, tc, journal)
		ch <- result{r, e, false}
	}()
	timer := time.NewTimer(tc.HedgeAfter)
	defer timer.Stop()
	pending := 1
	var last result
	select {
	case last = <-ch:
		pending--
		if last.err == nil && validShard(req, last.resp) {
			return last.resp, last.err
		}
	case <-timer.C:
	}
	// Primary is straggling (or failed): launch the hedge and take the
	// first valid answer from either side.
	if c.m != nil {
		c.m.hedges.Add(1)
	}
	journal.Event("shard_hedge", obs.A("worker", name), obs.A("alt", alt))
	go func() {
		r, e := c.callShardRetrying(ctx, v, alt, req, requestID, tc, journal)
		ch <- result{r, e, true}
	}()
	pending++
	for ; pending > 0; pending-- {
		r := <-ch
		if r.err == nil && validShard(req, r.resp) {
			if r.hedge && c.m != nil {
				c.m.hedgeWins.Add(1)
			}
			return r.resp, r.err
		}
		last = r
	}
	return last.resp, last.err
}
