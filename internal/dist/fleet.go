package dist

import (
	"context"
	"sort"
	"strconv"
	"strings"
	"time"

	"deviant/internal/obs"
)

// workerState is the coordinator's running view of one fleet member,
// fed by scatter outcomes and the background prober.
type workerState struct {
	healthy     bool
	lastError   string // fixed vocabulary, never transport detail
	lastScatter time.Duration
	lastProbe   time.Time
	build       *obs.Build
}

// WorkerStatus is one worker's externally visible state, served by
// GET /v1/fleet/status.
type WorkerStatus struct {
	Name               string     `json:"name"`
	Healthy            bool       `json:"healthy"`
	LastError          string     `json:"last_error,omitempty"`
	LastScatterSeconds float64    `json:"last_scatter_seconds,omitempty"`
	LastProbe          string     `json:"last_probe,omitempty"` // RFC 3339
	Build              *obs.Build `json:"build,omitempty"`
}

// FleetStatus is the coordinator's fleet summary: the membership epoch,
// ring composition in ring order (sorted worker names), per-worker
// health/build/latency, and the healthy count.
type FleetStatus struct {
	Epoch   uint64         `json:"epoch"`
	Size    int            `json:"size"`
	Healthy int            `json:"healthy"`
	Workers []WorkerStatus `json:"workers"`
}

// Status reports the fleet's current state. Workers are sorted by name.
func (c *Coordinator) Status() FleetStatus {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := FleetStatus{Epoch: c.view.epoch, Size: len(c.view.workers), Workers: make([]WorkerStatus, 0, len(c.view.workers))}
	for name, ws := range c.status {
		w := WorkerStatus{
			Name:      name,
			Healthy:   ws.healthy,
			LastError: ws.lastError,
			Build:     ws.build,
		}
		if ws.lastScatter > 0 {
			w.LastScatterSeconds = ws.lastScatter.Seconds()
		}
		if !ws.lastProbe.IsZero() {
			w.LastProbe = ws.lastProbe.UTC().Format(time.RFC3339)
		}
		st.Workers = append(st.Workers, w)
		if ws.healthy {
			st.Healthy++
		}
	}
	sort.Slice(st.Workers, func(i, j int) bool { return st.Workers[i].Name < st.Workers[j].Name })
	return st
}

// noteScatter records one scatter outcome in the worker's state and the
// membership view: a failed call (already retried by the transport)
// evicts the member from the next epoch's placement, a successful one
// re-admits it. Transport errors are reduced to a fixed string (see the
// quarantine causes: addresses must never leak into deterministic
// surfaces).
func (c *Coordinator) noteScatter(name string, rtt time.Duration, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ws := c.status[name]
	if ws == nil {
		return
	}
	ws.lastScatter = rtt
	if err != nil {
		ws.healthy = false
		ws.lastError = "shard call failed"
		c.evictLocked(name)
	} else {
		ws.healthy = true
		ws.lastError = ""
		c.readmitLocked(name)
	}
	c.setHealthyGaugeLocked()
}

func (c *Coordinator) setHealthyGaugeLocked() {
	if c.m == nil {
		return
	}
	healthy := 0
	for _, ws := range c.status {
		if ws.healthy {
			healthy++
		}
	}
	c.m.healthy.Set(float64(healthy))
}

// federate republishes one worker's scalar metric samples into the
// coordinator's registry under fleet_-prefixed names with a worker
// label. Every federated series is a gauge — a remote counter is still
// a point-in-time reading here, and forcing one kind avoids
// counter/gauge declaration conflicts across heterogeneous workers.
// Samples the worker already labeled "worker" are dropped rather than
// double-labeled.
func (c *Coordinator) federate(worker string, samples []obs.Sample) {
	if c.m == nil || c.m.reg == nil || len(samples) == 0 {
		return
	}
	for _, s := range samples {
		if s.Name == "" || strings.HasPrefix(s.Name, "fleet_") {
			continue
		}
		labels := make([]obs.Label, 0, len(s.Labels)+1)
		skip := false
		for _, l := range s.Labels {
			if l.Name == "worker" {
				skip = true
				break
			}
			labels = append(labels, l)
		}
		if skip {
			continue
		}
		labels = append(labels, obs.L("worker", worker))
		c.m.reg.Gauge("fleet_"+s.Name,
			"Federated from a worker's metrics (shard response or /metrics scrape).",
			labels...).Set(s.Value)
	}
}

// ProbeCaller is the optional probing side of a worker transport: a
// health check returning the worker's build identity, and a raw
// /metrics scrape. internal/client implements it over HTTP; a
// ShardCaller that does not implement it is simply not probed.
type ProbeCaller interface {
	ProbeHealth(ctx context.Context) (obs.Build, error)
	ScrapeMetrics(ctx context.Context) ([]obs.Sample, error)
}

// StartProber launches a background loop that probes every worker whose
// caller implements ProbeCaller each interval: health outcomes drive
// membership — failing members are evicted from placement, recovered
// ones re-admitted, each under a new epoch — and scraped metrics are
// federated. Each probe attempt is bounded at half the interval so a
// failed attempt plus its retry still fits inside one tick. Returns a
// stop function that halts the loop and waits for the in-flight tick.
func (c *Coordinator) StartProber(interval time.Duration) (stop func()) {
	if interval <= 0 {
		interval = 15 * time.Second
	}
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-done:
				return
			case <-ticker.C:
				c.ProbeOnce(context.Background(), interval/2)
			}
		}
	}()
	return func() {
		close(done)
		<-finished
	}
}

// probeAttempt is one bounded probe attempt: health, then (best-effort —
// a worker can be healthy with scraping failing) a metrics scrape.
func probeAttempt(ctx context.Context, pc ProbeCaller, timeout time.Duration) (obs.Build, []obs.Sample, error) {
	pctx := ctx
	if timeout > 0 {
		var cancel context.CancelFunc
		pctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	build, err := pc.ProbeHealth(pctx)
	if err != nil {
		return build, nil, err
	}
	samples, _ := pc.ScrapeMetrics(pctx)
	return build, samples, nil
}

// ProbeOnce probes every probe-capable member of the current view once,
// sequentially in name order, with timeout bounding each attempt. A
// failed attempt gets one retry with a fresh timeout before the member
// is declared down — a single dropped probe must not flap membership.
// Exported so tests and the prober share one code path.
func (c *Coordinator) ProbeOnce(ctx context.Context, timeout time.Duration) {
	v := c.currentView()
	for _, w := range v.workers {
		pc, ok := w.Caller.(ProbeCaller)
		if !ok {
			continue
		}
		build, samples, err := probeAttempt(ctx, pc, timeout)
		if err != nil && ctx.Err() == nil {
			build, samples, err = probeAttempt(ctx, pc, timeout)
		}
		c.noteProbe(w.Name, build, err)
		if err == nil {
			c.federate(w.Name, samples)
		}
	}
}

// noteProbe records one health-probe outcome: failure evicts the member
// from placement, recovery re-admits it, each publishing a new epoch.
func (c *Coordinator) noteProbe(name string, build obs.Build, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ws := c.status[name]
	if ws == nil {
		return
	}
	ws.lastProbe = time.Now()
	if err != nil {
		ws.healthy = false
		ws.lastError = "health probe failed"
		c.evictLocked(name)
	} else {
		ws.healthy = true
		ws.lastError = ""
		b := build
		ws.build = &b
		c.readmitLocked(name)
	}
	c.setHealthyGaugeLocked()
}

// journalPlacement logs one event per worker in a placement map, in
// sorted worker order so journal bytes are deterministic for a given
// corpus and fleet.
func journalPlacement(j *obs.Journal, event string, assign map[string][]string) {
	if j == nil || len(assign) == 0 {
		return
	}
	names := make([]string, 0, len(assign))
	for name := range assign {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		j.Event(event,
			obs.A("worker", name),
			obs.A("units", strconv.Itoa(len(assign[name]))),
			obs.A("list", strings.Join(assign[name], ",")))
	}
}
