package dist

import (
	"context"
	"sort"
	"strconv"
	"strings"
	"time"

	"deviant/internal/obs"
)

// workerState is the coordinator's running view of one fleet member,
// fed by scatter outcomes and the background prober.
type workerState struct {
	healthy     bool
	lastError   string // fixed vocabulary, never transport detail
	lastScatter time.Duration
	lastProbe   time.Time
	build       *obs.Build
}

// WorkerStatus is one worker's externally visible state, served by
// GET /v1/fleet/status.
type WorkerStatus struct {
	Name               string     `json:"name"`
	Healthy            bool       `json:"healthy"`
	LastError          string     `json:"last_error,omitempty"`
	LastScatterSeconds float64    `json:"last_scatter_seconds,omitempty"`
	LastProbe          string     `json:"last_probe,omitempty"` // RFC 3339
	Build              *obs.Build `json:"build,omitempty"`
}

// FleetStatus is the coordinator's fleet summary: ring composition in
// ring order (sorted worker names), per-worker health/build/latency,
// and the healthy count.
type FleetStatus struct {
	Size    int            `json:"size"`
	Healthy int            `json:"healthy"`
	Workers []WorkerStatus `json:"workers"`
}

// Status reports the fleet's current state. Workers are sorted by name.
func (c *Coordinator) Status() FleetStatus {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := FleetStatus{Size: len(c.workers), Workers: make([]WorkerStatus, 0, len(c.workers))}
	for name, ws := range c.status {
		w := WorkerStatus{
			Name:      name,
			Healthy:   ws.healthy,
			LastError: ws.lastError,
			Build:     ws.build,
		}
		if ws.lastScatter > 0 {
			w.LastScatterSeconds = ws.lastScatter.Seconds()
		}
		if !ws.lastProbe.IsZero() {
			w.LastProbe = ws.lastProbe.UTC().Format(time.RFC3339)
		}
		st.Workers = append(st.Workers, w)
		if ws.healthy {
			st.Healthy++
		}
	}
	sort.Slice(st.Workers, func(i, j int) bool { return st.Workers[i].Name < st.Workers[j].Name })
	return st
}

// noteScatter records one scatter outcome in the worker's state and the
// down set. Transport errors are reduced to a fixed string (see the
// quarantine causes: addresses must never leak into deterministic
// surfaces).
func (c *Coordinator) noteScatter(name string, rtt time.Duration, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ws := c.status[name]
	if ws == nil {
		return
	}
	ws.lastScatter = rtt
	if err != nil {
		ws.healthy = false
		ws.lastError = "shard call failed"
		c.down[name] = true
	} else {
		ws.healthy = true
		ws.lastError = ""
		delete(c.down, name)
	}
	c.setHealthyGaugeLocked()
}

// snapshotDown copies the current down set for lock-free placement.
func (c *Coordinator) snapshotDown() map[string]bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.down) == 0 {
		return nil
	}
	out := make(map[string]bool, len(c.down))
	for name := range c.down {
		out[name] = true
	}
	return out
}

func (c *Coordinator) setHealthyGaugeLocked() {
	if c.m == nil {
		return
	}
	healthy := 0
	for _, ws := range c.status {
		if ws.healthy {
			healthy++
		}
	}
	c.m.healthy.Set(float64(healthy))
}

// federate republishes one worker's scalar metric samples into the
// coordinator's registry under fleet_-prefixed names with a worker
// label. Every federated series is a gauge — a remote counter is still
// a point-in-time reading here, and forcing one kind avoids
// counter/gauge declaration conflicts across heterogeneous workers.
// Samples the worker already labeled "worker" are dropped rather than
// double-labeled.
func (c *Coordinator) federate(worker string, samples []obs.Sample) {
	if c.m == nil || c.m.reg == nil || len(samples) == 0 {
		return
	}
	for _, s := range samples {
		if s.Name == "" || strings.HasPrefix(s.Name, "fleet_") {
			continue
		}
		labels := make([]obs.Label, 0, len(s.Labels)+1)
		skip := false
		for _, l := range s.Labels {
			if l.Name == "worker" {
				skip = true
				break
			}
			labels = append(labels, l)
		}
		if skip {
			continue
		}
		labels = append(labels, obs.L("worker", worker))
		c.m.reg.Gauge("fleet_"+s.Name,
			"Federated from a worker's metrics (shard response or /metrics scrape).",
			labels...).Set(s.Value)
	}
}

// ProbeCaller is the optional probing side of a worker transport: a
// health check returning the worker's build identity, and a raw
// /metrics scrape. internal/client implements it over HTTP; a
// ShardCaller that does not implement it is simply not probed.
type ProbeCaller interface {
	ProbeHealth(ctx context.Context) (obs.Build, error)
	ScrapeMetrics(ctx context.Context) ([]obs.Sample, error)
}

// StartProber launches a background loop that probes every worker whose
// caller implements ProbeCaller each interval: health outcomes drive
// the healthy-worker gauge and the down set consulted by placement
// between runs, and scraped metrics are federated. Returns a stop
// function that halts the loop and waits for the in-flight tick.
func (c *Coordinator) StartProber(interval time.Duration) (stop func()) {
	if interval <= 0 {
		interval = 15 * time.Second
	}
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-done:
				return
			case <-ticker.C:
				c.ProbeOnce(context.Background(), interval)
			}
		}
	}()
	return func() {
		close(done)
		<-finished
	}
}

// ProbeOnce probes every probe-capable worker once, sequentially in
// name order, with timeout bounding each worker's probe pair. Exported
// so tests and the prober share one code path.
func (c *Coordinator) ProbeOnce(ctx context.Context, timeout time.Duration) {
	for _, w := range c.workers {
		pc, ok := w.Caller.(ProbeCaller)
		if !ok {
			continue
		}
		pctx := ctx
		var cancel context.CancelFunc
		if timeout > 0 {
			pctx, cancel = context.WithTimeout(ctx, timeout)
		}
		build, err := pc.ProbeHealth(pctx)
		var samples []obs.Sample
		if err == nil {
			// Best-effort: a worker can be healthy with scraping failing.
			samples, _ = pc.ScrapeMetrics(pctx)
		}
		if cancel != nil {
			cancel()
		}
		c.noteProbe(w.Name, build, err)
		if err == nil {
			c.federate(w.Name, samples)
		}
	}
}

// noteProbe records one health-probe outcome.
func (c *Coordinator) noteProbe(name string, build obs.Build, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ws := c.status[name]
	if ws == nil {
		return
	}
	ws.lastProbe = time.Now()
	if err != nil {
		ws.healthy = false
		ws.lastError = "health probe failed"
		c.down[name] = true
	} else {
		ws.healthy = true
		ws.lastError = ""
		b := build
		ws.build = &b
		delete(c.down, name)
	}
	c.setHealthyGaugeLocked()
}

// journalPlacement logs one event per worker in a placement map, in
// sorted worker order so journal bytes are deterministic for a given
// corpus and fleet.
func journalPlacement(j *obs.Journal, event string, assign map[string][]string) {
	if j == nil || len(assign) == 0 {
		return
	}
	names := make([]string, 0, len(assign))
	for name := range assign {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		j.Event(event,
			obs.A("worker", name),
			obs.A("units", strconv.Itoa(len(assign[name]))),
			obs.A("list", strings.Join(assign[name], ",")))
	}
}
