package dist

import (
	"context"
	"strings"
	"testing"
	"time"

	"deviant/internal/core"
	"deviant/internal/fault"
	"deviant/internal/obs"
	"deviant/internal/snapshot"
)

// TestTransientNetFaultsAbsorbed arms each network fault class for
// exactly one call against one worker of three: the transport's retry
// (or the merge's idempotence, for duplicates) absorbs the blip and the
// run stays byte-identical to single-process, not degraded.
func TestTransientNetFaultsAbsorbed(t *testing.T) {
	srcs := fleetSources()
	want := baseline(t, srcs)
	for _, f := range []fault.NetFault{
		{Action: fault.NetDrop, Times: 1},
		{Action: fault.NetDelay, Delay: 5 * time.Millisecond, Times: 1},
		{Action: fault.NetCorrupt, Times: 1},
		{Action: fault.NetTruncate, Times: 1},
		{Action: fault.NetDuplicate, Times: 1},
	} {
		t.Run(f.Action.String(), func(t *testing.T) {
			defer fault.Reset()
			c, _ := newLocalFleet(t, 3)
			fault.ArmNet(NetPoint, "w1", f)
			res, err := c.Run(context.Background(), srcs, core.DefaultOptions(), "net-"+f.Action.String())
			if err != nil {
				t.Fatal(err)
			}
			if res.Degraded {
				t.Fatalf("transient %s degraded the run: %v", f.Action, res.Quarantined)
			}
			if got := canon(res); got != want {
				t.Fatalf("transient %s changed output bytes:\n--- fleet\n%s--- single\n%s", f.Action, got, want)
			}
		})
	}
}

// TestPersistentDropOneWorker leaves one worker's link down for the
// whole run: retries fail, the shard re-scatters to survivors, output
// stays byte-identical and healthy.
func TestPersistentDropOneWorker(t *testing.T) {
	defer fault.Reset()
	srcs := fleetSources()
	want := baseline(t, srcs)
	c, _ := newLocalFleet(t, 4)
	fault.ArmNet(NetPoint, "w2", fault.NetFault{Action: fault.NetDrop})
	res, err := c.Run(context.Background(), srcs, core.DefaultOptions(), "drop-w2")
	if err != nil {
		t.Fatal(err)
	}
	if res.Degraded {
		t.Fatalf("re-scatter did not absorb a single dead link: %v", res.Quarantined)
	}
	if got := canon(res); got != want {
		t.Fatal("persistent one-worker drop changed output bytes")
	}
	if down := c.snapshotDown(); !down["w2"] {
		t.Fatalf("dead-link worker not evicted: %v", down)
	}
}

// TestPersistentDropAllDeterministic cuts every link: the run degrades
// — never errors — with the fixed causeLost per unit, byte-identical
// across repeated runs.
func TestPersistentDropAllDeterministic(t *testing.T) {
	defer fault.Reset()
	srcs := fleetSources()
	c, _ := newLocalFleet(t, 2)
	fault.ArmNet(NetPoint, "w", fault.NetFault{Action: fault.NetDrop})
	run := func(id string) *core.Result {
		res, err := c.Run(context.Background(), srcs, core.DefaultOptions(), id)
		if err != nil {
			t.Fatalf("all-links-dead must degrade, not fail: %v", err)
		}
		return res
	}
	res := run("dead1")
	if !res.Degraded || len(res.Quarantined) != 6 {
		t.Fatalf("want 6 quarantined units, got %v", res.Quarantined)
	}
	for _, q := range res.Quarantined {
		if q.Stage != fleetStage || q.Cause != causeLost {
			t.Fatalf("unexpected record %+v", q)
		}
	}
	if a, b := canon(res), canon(run("dead2")); a != b {
		t.Fatalf("degradation not deterministic:\n%s\nvs\n%s", a, b)
	}
}

// TestPersistentCorruptContainedPerUnit arms unlimited corruption on a
// single-worker fleet: retries cannot fix it, and the final mangled
// response must flow to the merge so exactly the affected unit
// quarantines with causeCorrupt — per-unit containment, not
// whole-shard loss.
func TestPersistentCorruptContainedPerUnit(t *testing.T) {
	defer fault.Reset()
	srcs := fleetSources()
	c, _ := newLocalFleet(t, 1)
	fault.ArmNet(NetPoint, "w0", fault.NetFault{Action: fault.NetCorrupt})
	run := func(id string) *core.Result {
		res, err := c.Run(context.Background(), srcs, core.DefaultOptions(), id)
		if err != nil {
			t.Fatalf("corrupt link must degrade, not fail: %v", err)
		}
		return res
	}
	res := run("corrupt1")
	if !res.Degraded {
		t.Fatal("not degraded")
	}
	if len(res.Quarantined) != 1 || res.Quarantined[0].Cause != causeCorrupt {
		t.Fatalf("want exactly one causeCorrupt record, got %v", res.Quarantined)
	}
	if res.FuncCount == 0 {
		t.Fatal("healthy units were not analyzed")
	}
	if a, b := canon(res), canon(run("corrupt2")); a != b {
		t.Fatal("corrupt degradation not deterministic")
	}
}

// slowWorker delays every shard call before delegating.
type slowWorker struct {
	localWorker
	delay time.Duration
}

func (w *slowWorker) Shard(ctx context.Context, req *ShardRequest, requestID string) (*ShardResponse, error) {
	select {
	case <-time.After(w.delay):
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	return w.localWorker.Shard(ctx, req, requestID)
}

// TestCallTimeoutAbandonsStraggler bounds each attempt well below a
// straggler's delay: every attempt to the slow worker times out, its
// shard re-scatters, and output bytes hold.
func TestCallTimeoutAbandonsStraggler(t *testing.T) {
	srcs := fleetSources()
	want := baseline(t, srcs)
	slow := &slowWorker{delay: 30 * time.Second}
	slow.store = snapshot.NewStore(0)
	fast := &localWorker{store: snapshot.NewStore(0)}
	c, err := NewCoordinator([]Worker{{Name: "w0", Caller: slow}, {Name: "w1", Caller: fast}})
	if err != nil {
		t.Fatal(err)
	}
	c.SetTransport(TransportConfig{CallTimeout: 50 * time.Millisecond, Retries: 1, RetryBackoff: time.Millisecond})
	start := time.Now()
	res, err := c.Run(context.Background(), srcs, core.DefaultOptions(), "timeout")
	if err != nil {
		t.Fatal(err)
	}
	if took := time.Since(start); took > 5*time.Second {
		t.Fatalf("run took %v; straggler was not abandoned", took)
	}
	if res.Degraded {
		t.Fatalf("timed-out shard not re-scattered: %v", res.Quarantined)
	}
	if got := canon(res); got != want {
		t.Fatal("timeout path changed output bytes")
	}
}

// TestHedgedRetryBeatsStraggler enables hedging with a generous
// per-call timeout: the straggler's shard is hedged to the next ring
// owner, the hedge wins, and the run finishes fast and byte-identical.
func TestHedgedRetryBeatsStraggler(t *testing.T) {
	srcs := fleetSources()
	want := baseline(t, srcs)
	slow := &slowWorker{delay: 20 * time.Second}
	slow.store = snapshot.NewStore(0)
	fast := &localWorker{store: snapshot.NewStore(0)}
	c, err := NewCoordinator([]Worker{{Name: "w0", Caller: slow}, {Name: "w1", Caller: fast}})
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	c.RegisterMetrics(reg)
	c.SetTransport(TransportConfig{CallTimeout: time.Minute, HedgeAfter: 30 * time.Millisecond})
	start := time.Now()
	res, err := c.Run(context.Background(), srcs, core.DefaultOptions(), "hedge")
	if err != nil {
		t.Fatal(err)
	}
	if took := time.Since(start); took > 10*time.Second {
		t.Fatalf("run took %v; hedge never fired", took)
	}
	if res.Degraded {
		t.Fatalf("hedged run degraded: %v", res.Quarantined)
	}
	if got := canon(res); got != want {
		t.Fatal("hedged run changed output bytes")
	}
	if slowShard := slow.calls.Load(); slowShard == 0 {
		// The straggler must have been tried at all for the hedge to mean
		// anything (placement gave it at least one unit on this corpus).
		t.Skip("straggler received no units; hedge path not exercised")
	}
	if got := c.m.hedges.Value(); got < 1 {
		t.Fatalf("hedges counter %v, want >= 1", got)
	}
	if got := c.m.hedgeWins.Value(); got < 1 {
		t.Fatalf("hedge wins counter %v, want >= 1", got)
	}
}

// TestRetryCounterAndJournal pins the observability of the retry path:
// a one-shot drop moves the retries counter and lands a shard_retry
// event in the journal.
func TestRetryCounterAndJournal(t *testing.T) {
	defer fault.Reset()
	srcs := fleetSources()
	c, _ := newLocalFleet(t, 2)
	reg := obs.NewRegistry()
	c.RegisterMetrics(reg)
	fault.ArmNet(NetPoint, "w0", fault.NetFault{Action: fault.NetDrop, Times: 1})
	var sb strings.Builder
	opts := core.DefaultOptions()
	opts.Journal = obs.NewJournal(&sb, "retry-test")
	if _, err := c.Run(context.Background(), srcs, opts, "retry-test"); err != nil {
		t.Fatal(err)
	}
	if got := c.m.retries.Value(); got < 1 {
		t.Fatalf("retries counter %v, want >= 1", got)
	}
	if !strings.Contains(sb.String(), `"event":"shard_retry"`) {
		t.Fatalf("journal missing shard_retry event:\n%s", sb.String())
	}
}

// TestValidShard unit-tests the transport's integrity validation.
func TestValidShard(t *testing.T) {
	req := &ShardRequest{Units: []string{"a.c", "b.c"}}
	part := func(unit string, tokens []byte) UnitPartial {
		raw, sum, err := encodeTokens(nil)
		if err != nil {
			t.Fatal(err)
		}
		if tokens != nil {
			raw = tokens
		}
		return UnitPartial{Unit: unit, Tokens: raw, Sum: sum}
	}
	good := &ShardResponse{Partials: []UnitPartial{part("a.c", nil), part("b.c", nil)}}
	if !validShard(req, good) {
		t.Fatal("complete response rejected")
	}
	corrupt := &ShardResponse{Partials: []UnitPartial{part("a.c", []byte("junk")), part("b.c", nil)}}
	if validShard(req, corrupt) {
		t.Fatal("checksum-mismatched partial accepted")
	}
	missing := &ShardResponse{Partials: []UnitPartial{part("a.c", nil)}}
	if validShard(req, missing) {
		t.Fatal("uncovered unit accepted")
	}
	quarantined := &ShardResponse{
		Partials:    []UnitPartial{part("a.c", nil)},
		Quarantined: []fault.Record{{Unit: "b.c", Stage: "frontend", Cause: "x"}},
	}
	if !validShard(req, quarantined) {
		t.Fatal("quarantine-covered unit rejected")
	}
	star := &ShardResponse{Quarantined: []fault.Record{{Unit: "*", Stage: "frontend", Cause: "x"}}}
	if !validShard(req, star) {
		t.Fatal("whole-shard quarantine rejected")
	}
	if validShard(req, nil) {
		t.Fatal("nil response accepted")
	}
}
