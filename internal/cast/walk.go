package cast

// Inspect traverses the tree rooted at n in depth-first order, calling f
// for every node. If f returns false for a node, its children are skipped.
func Inspect(n Node, f func(Node) bool) {
	if n == nil || !f(n) {
		return
	}
	switch x := n.(type) {
	case *File:
		for _, d := range x.Decls {
			Inspect(d, f)
		}
	case *FuncDecl:
		for _, p := range x.Params {
			Inspect(p, f)
		}
		if x.Body != nil {
			Inspect(x.Body, f)
		}
	case *ParamDecl, *FieldDecl, *TypedefDecl, *RecordDecl:
		// leaves for traversal purposes
	case *EnumDecl:
		for _, v := range x.Values {
			if v.Value != nil {
				Inspect(v.Value, f)
			}
		}
	case *VarDecl:
		if x.Init != nil {
			Inspect(x.Init, f)
		}
	case *CompoundStmt:
		for _, s := range x.List {
			Inspect(s, f)
		}
	case *ExprStmt:
		if x.X != nil {
			Inspect(x.X, f)
		}
	case *DeclStmt:
		for _, d := range x.Decls {
			Inspect(d, f)
		}
	case *IfStmt:
		Inspect(x.Cond, f)
		Inspect(x.Then, f)
		if x.Else != nil {
			Inspect(x.Else, f)
		}
	case *WhileStmt:
		Inspect(x.Cond, f)
		Inspect(x.Body, f)
	case *DoWhileStmt:
		Inspect(x.Body, f)
		Inspect(x.Cond, f)
	case *ForStmt:
		if x.Init != nil {
			Inspect(x.Init, f)
		}
		if x.Cond != nil {
			Inspect(x.Cond, f)
		}
		if x.Post != nil {
			Inspect(x.Post, f)
		}
		Inspect(x.Body, f)
	case *SwitchStmt:
		Inspect(x.Tag, f)
		Inspect(x.Body, f)
	case *CaseStmt:
		if x.Value != nil {
			Inspect(x.Value, f)
		}
	case *ReturnStmt:
		if x.X != nil {
			Inspect(x.X, f)
		}
	case *BreakStmt, *ContinueStmt, *GotoStmt:
	case *LabelStmt:
		if x.Stmt != nil {
			Inspect(x.Stmt, f)
		}
	case *Ident, *IntLit, *FloatLit, *CharLit, *StringLit, *SizeofTypeExpr:
	case *UnaryExpr:
		Inspect(x.X, f)
	case *PostfixExpr:
		Inspect(x.X, f)
	case *BinaryExpr:
		Inspect(x.X, f)
		Inspect(x.Y, f)
	case *AssignExpr:
		Inspect(x.L, f)
		Inspect(x.R, f)
	case *CondExpr:
		Inspect(x.Cond, f)
		Inspect(x.Then, f)
		Inspect(x.Else, f)
	case *CallExpr:
		Inspect(x.Fun, f)
		for _, a := range x.Args {
			Inspect(a, f)
		}
	case *IndexExpr:
		Inspect(x.X, f)
		Inspect(x.Index, f)
	case *MemberExpr:
		Inspect(x.X, f)
	case *CastExpr:
		Inspect(x.X, f)
	case *CommaExpr:
		Inspect(x.X, f)
		Inspect(x.Y, f)
	case *InitListExpr:
		for _, it := range x.Items {
			Inspect(it, f)
		}
	}
}

// Calls returns every CallExpr under n whose callee is a plain identifier,
// in source order.
func Calls(n Node) []*CallExpr {
	var out []*CallExpr
	Inspect(n, func(m Node) bool {
		if c, ok := m.(*CallExpr); ok {
			if _, isIdent := c.Fun.(*Ident); isIdent {
				out = append(out, c)
			}
		}
		return true
	})
	return out
}

// CalleeName returns the callee identifier of a call, or "" if the callee
// is not a plain identifier.
func CalleeName(c *CallExpr) string {
	if id, ok := c.Fun.(*Ident); ok {
		return id.Name
	}
	return ""
}
