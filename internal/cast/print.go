package cast

import (
	"fmt"
	"strings"

	"deviant/internal/ctoken"
)

// ExprString renders an expression as C-ish source text, used in error
// messages ("dereferencing NULL ptr card->contrnr") and as the canonical
// key for belief slots.
func ExprString(e Expr) string {
	var b strings.Builder
	writeExpr(&b, e)
	return b.String()
}

func writeExpr(b *strings.Builder, e Expr) {
	switch x := e.(type) {
	case nil:
		b.WriteString("<nil>")
	case *Ident:
		b.WriteString(x.Name)
	case *IntLit:
		b.WriteString(x.Text)
	case *FloatLit:
		b.WriteString(x.Text)
	case *CharLit:
		b.WriteString(x.Text)
	case *StringLit:
		b.WriteString(x.Text)
	case *UnaryExpr:
		if x.Op == ctoken.KwSizeof {
			b.WriteString("sizeof(")
			writeExpr(b, x.X)
			b.WriteString(")")
			return
		}
		b.WriteString(opText(x.Op))
		writeExpr(b, x.X)
	case *PostfixExpr:
		writeExpr(b, x.X)
		b.WriteString(opText(x.Op))
	case *BinaryExpr:
		b.WriteString("(")
		writeExpr(b, x.X)
		b.WriteString(" " + opText(x.Op) + " ")
		writeExpr(b, x.Y)
		b.WriteString(")")
	case *AssignExpr:
		writeExpr(b, x.L)
		b.WriteString(" " + opText(x.Op) + " ")
		writeExpr(b, x.R)
	case *CondExpr:
		writeExpr(b, x.Cond)
		b.WriteString(" ? ")
		writeExpr(b, x.Then)
		b.WriteString(" : ")
		writeExpr(b, x.Else)
	case *CallExpr:
		writeExpr(b, x.Fun)
		b.WriteString("(")
		for i, a := range x.Args {
			if i > 0 {
				b.WriteString(", ")
			}
			writeExpr(b, a)
		}
		b.WriteString(")")
	case *IndexExpr:
		writeExpr(b, x.X)
		b.WriteString("[")
		writeExpr(b, x.Index)
		b.WriteString("]")
	case *MemberExpr:
		writeExpr(b, x.X)
		if x.Arrow {
			b.WriteString("->")
		} else {
			b.WriteString(".")
		}
		b.WriteString(x.Member)
	case *CastExpr:
		b.WriteString("(" + x.To.TypeString() + ")")
		writeExpr(b, x.X)
	case *SizeofTypeExpr:
		b.WriteString("sizeof(" + x.Of.TypeString() + ")")
	case *CommaExpr:
		writeExpr(b, x.X)
		b.WriteString(", ")
		writeExpr(b, x.Y)
	case *InitListExpr:
		b.WriteString("{")
		for i, it := range x.Items {
			if i > 0 {
				b.WriteString(", ")
			}
			if x.Designators[i] != "" {
				b.WriteString("." + x.Designators[i] + " = ")
			}
			writeExpr(b, it)
		}
		b.WriteString("}")
	default:
		fmt.Fprintf(b, "<%T>", e)
	}
}

func opText(k ctoken.Kind) string { return k.String() }

// StripParensAndCasts unwraps casts (and nothing else; the parser does not
// keep explicit paren nodes) to the operand expression. Belief slots key
// on the underlying lvalue, so "(struct foo *)p" and "p" are the same
// slot.
func StripParensAndCasts(e Expr) Expr {
	for {
		c, ok := e.(*CastExpr)
		if !ok {
			return e
		}
		e = c.X
	}
}
