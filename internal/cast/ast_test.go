package cast

import (
	"testing"

	"deviant/internal/ctoken"
)

func TestTypeStrings(t *testing.T) {
	cases := []struct {
		typ  Type
		want string
	}{
		{&BasicType{Name: "int"}, "int"},
		{&PointerType{Elem: &BasicType{Name: "char"}}, "char *"},
		{&ArrayType{Elem: &BasicType{Name: "int"}, Len: 4}, "int []"},
		{&StructType{Tag: "foo"}, "struct foo"},
		{&StructType{Union: true, Tag: "u"}, "union u"},
		{&EnumType{Tag: "e"}, "enum e"},
		{&NamedType{Name: "size_t"}, "size_t"},
	}
	for _, c := range cases {
		if got := c.typ.TypeString(); got != c.want {
			t.Errorf("got %q want %q", got, c.want)
		}
	}
}

func TestIsPointer(t *testing.T) {
	if (&BasicType{Name: "int"}).IsPointer() {
		t.Error("int is not a pointer")
	}
	if !(&PointerType{Elem: &BasicType{Name: "int"}}).IsPointer() {
		t.Error("int* is a pointer")
	}
	if !(&ArrayType{Elem: &BasicType{Name: "int"}}).IsPointer() {
		t.Error("arrays decay to pointers for analysis")
	}
	nt := &NamedType{Name: "ptr_t", Underlying: &PointerType{Elem: &BasicType{Name: "void"}}}
	if !nt.IsPointer() {
		t.Error("typedef of pointer is a pointer")
	}
	if (&NamedType{Name: "opaque_t"}).IsPointer() {
		t.Error("unknown typedef should not claim pointer")
	}
}

func TestUnwrap(t *testing.T) {
	inner := &BasicType{Name: "unsigned long"}
	l1 := &NamedType{Name: "a_t", Underlying: inner}
	l2 := &NamedType{Name: "b_t", Underlying: l1}
	if Unwrap(l2) != inner {
		t.Error("Unwrap should reach the basic type")
	}
	dangling := &NamedType{Name: "x_t"}
	if Unwrap(dangling) != dangling {
		t.Error("Unwrap of unknown typedef returns it unchanged")
	}
}

func TestExprStringShapes(t *testing.T) {
	p := ctoken.Pos{Line: 1, Col: 1}
	e := &MemberExpr{
		X:      &Ident{Name: "tty", NamePos: p},
		Arrow:  true,
		Member: "driver_data",
	}
	if got := ExprString(e); got != "tty->driver_data" {
		t.Errorf("got %q", got)
	}
	u := &UnaryExpr{Op: ctoken.Star, X: &Ident{Name: "p", NamePos: p}, OpPos: p}
	if got := ExprString(u); got != "*p" {
		t.Errorf("got %q", got)
	}
	c := &CallExpr{
		Fun:  &Ident{Name: "f", NamePos: p},
		Args: []Expr{&IntLit{Text: "1", Value: 1, LitPos: p}, &Ident{Name: "x", NamePos: p}},
	}
	if got := ExprString(c); got != "f(1, x)" {
		t.Errorf("got %q", got)
	}
}

func TestInspectPrune(t *testing.T) {
	p := ctoken.Pos{Line: 1, Col: 1}
	// if (c) { f(); } else { g(); }
	tree := &IfStmt{
		IfPos: p,
		Cond:  &Ident{Name: "c", NamePos: p},
		Then:  &ExprStmt{X: &CallExpr{Fun: &Ident{Name: "f", NamePos: p}}},
		Else:  &ExprStmt{X: &CallExpr{Fun: &Ident{Name: "g", NamePos: p}}},
	}
	var all []string
	Inspect(tree, func(n Node) bool {
		if id, ok := n.(*Ident); ok {
			all = append(all, id.Name)
		}
		return true
	})
	if len(all) != 3 {
		t.Errorf("full walk idents: %v", all)
	}
	var pruned []string
	Inspect(tree, func(n Node) bool {
		if _, ok := n.(*ExprStmt); ok {
			return false // skip both branches
		}
		if id, ok := n.(*Ident); ok {
			pruned = append(pruned, id.Name)
		}
		return true
	})
	if len(pruned) != 1 || pruned[0] != "c" {
		t.Errorf("pruned walk idents: %v", pruned)
	}
}

func TestFromMacroPropagation(t *testing.T) {
	p := ctoken.Pos{Line: 1, Col: 1}
	macroIdent := &Ident{Name: "p", NamePos: p, Macro: true}
	if !(&UnaryExpr{Op: ctoken.Star, X: macroIdent, Macro: true}).FromMacro() {
		t.Error("unary macro flag")
	}
	bin := &BinaryExpr{Op: ctoken.Plus, X: macroIdent, Y: &IntLit{Text: "1"}}
	if !bin.FromMacro() {
		t.Error("binary inherits leading operand macro flag")
	}
	plain := &BinaryExpr{Op: ctoken.Plus, X: &Ident{Name: "q", NamePos: p}, Y: macroIdent}
	if plain.FromMacro() {
		t.Error("non-macro leading operand should not be macro")
	}
}

func TestFilePos(t *testing.T) {
	f := &File{Name: "x.c"}
	if f.Pos().File != "x.c" {
		t.Errorf("empty file pos: %v", f.Pos())
	}
	vd := &VarDecl{Name: "v", NamePos: ctoken.Pos{File: "x.c", Line: 5, Col: 1}}
	f.Decls = append(f.Decls, vd)
	if f.Pos().Line != 5 {
		t.Errorf("file pos should be first decl: %v", f.Pos())
	}
}
