// Package cast defines the abstract syntax tree for the C subset deviant
// analyzes, along with a visitor and a source printer.
package cast

import (
	"deviant/internal/ctoken"
)

// Node is implemented by every AST node.
type Node interface {
	Pos() ctoken.Pos
}

// ---------------------------------------------------------------------------
// Types

// Type is the interface of C type representations.
type Type interface {
	// TypeString renders the type for diagnostics, e.g. "struct foo *".
	TypeString() string
	// IsPointer reports whether the type is a pointer type.
	IsPointer() bool
}

// BasicType is a builtin scalar type ("int", "unsigned long", "void", ...).
type BasicType struct {
	Name string // normalized, e.g. "unsigned long"
}

// TypeString implements Type.
func (t *BasicType) TypeString() string { return t.Name }

// IsPointer implements Type.
func (t *BasicType) IsPointer() bool { return false }

// PointerType is a pointer to Elem.
type PointerType struct {
	Elem Type
}

// TypeString implements Type.
func (t *PointerType) TypeString() string { return t.Elem.TypeString() + " *" }

// IsPointer implements Type.
func (t *PointerType) IsPointer() bool { return true }

// ArrayType is an array of Elem. Len is -1 for unspecified sizes.
type ArrayType struct {
	Elem Type
	Len  int64
}

// TypeString implements Type.
func (t *ArrayType) TypeString() string { return t.Elem.TypeString() + " []" }

// IsPointer implements Type. Arrays decay to pointers in the analyses we
// run, so they answer true.
func (t *ArrayType) IsPointer() bool { return true }

// StructType refers to a struct or union by tag. Fields may be nil for
// forward references.
type StructType struct {
	Union  bool
	Tag    string
	Fields []*FieldDecl
}

// TypeString implements Type.
func (t *StructType) TypeString() string {
	kw := "struct"
	if t.Union {
		kw = "union"
	}
	if t.Tag != "" {
		return kw + " " + t.Tag
	}
	return kw
}

// IsPointer implements Type.
func (t *StructType) IsPointer() bool { return false }

// EnumType refers to an enum by tag.
type EnumType struct {
	Tag       string
	Enumerats []string
}

// TypeString implements Type.
func (t *EnumType) TypeString() string {
	if t.Tag != "" {
		return "enum " + t.Tag
	}
	return "enum"
}

// IsPointer implements Type.
func (t *EnumType) IsPointer() bool { return false }

// NamedType is a typedef reference.
type NamedType struct {
	Name       string
	Underlying Type // may be nil if the typedef target was not seen
}

// TypeString implements Type.
func (t *NamedType) TypeString() string { return t.Name }

// IsPointer implements Type.
func (t *NamedType) IsPointer() bool {
	return t.Underlying != nil && t.Underlying.IsPointer()
}

// FuncType is a function type.
type FuncType struct {
	Ret      Type
	Params   []*ParamDecl
	Variadic bool
}

// TypeString implements Type.
func (t *FuncType) TypeString() string {
	s := t.Ret.TypeString() + " (*)("
	for i, p := range t.Params {
		if i > 0 {
			s += ", "
		}
		s += p.Type.TypeString()
	}
	if t.Variadic {
		s += ", ..."
	}
	return s + ")"
}

// IsPointer implements Type.
func (t *FuncType) IsPointer() bool { return false }

// Unwrap strips typedef indirection, returning the first non-NamedType, or
// the innermost NamedType if its underlying type is unknown.
func Unwrap(t Type) Type {
	for {
		nt, ok := t.(*NamedType)
		if !ok || nt.Underlying == nil {
			return t
		}
		t = nt.Underlying
	}
}

// ---------------------------------------------------------------------------
// Declarations

// File is one parsed translation unit.
type File struct {
	Name  string
	Decls []Node // *FuncDecl, *VarDecl, *TypedefDecl, *RecordDecl, *EnumDecl
}

// Pos implements Node.
func (f *File) Pos() ctoken.Pos {
	if len(f.Decls) > 0 {
		return f.Decls[0].Pos()
	}
	return ctoken.Pos{File: f.Name, Line: 1, Col: 1}
}

// FuncDecl is a function definition or prototype (Body nil for prototypes).
type FuncDecl struct {
	Name     string
	NamePos  ctoken.Pos
	Ret      Type
	Params   []*ParamDecl
	Variadic bool
	Body     *CompoundStmt // nil for a prototype
	Static   bool
	Inline   bool
}

// Pos implements Node.
func (d *FuncDecl) Pos() ctoken.Pos { return d.NamePos }

// ParamDecl is one function parameter.
type ParamDecl struct {
	Name    string // may be "" in prototypes
	NamePos ctoken.Pos
	Type    Type
}

// Pos implements Node.
func (d *ParamDecl) Pos() ctoken.Pos { return d.NamePos }

// VarDecl declares one variable (file scope or block scope).
type VarDecl struct {
	Name    string
	NamePos ctoken.Pos
	Type    Type
	Init    Expr // may be nil
	Static  bool
	Extern  bool
}

// Pos implements Node.
func (d *VarDecl) Pos() ctoken.Pos { return d.NamePos }

// FieldDecl is a struct/union member.
type FieldDecl struct {
	Name    string
	NamePos ctoken.Pos
	Type    Type
}

// Pos implements Node.
func (d *FieldDecl) Pos() ctoken.Pos { return d.NamePos }

// TypedefDecl introduces a typedef name.
type TypedefDecl struct {
	Name    string
	NamePos ctoken.Pos
	Type    Type
}

// Pos implements Node.
func (d *TypedefDecl) Pos() ctoken.Pos { return d.NamePos }

// RecordDecl declares a struct or union with its fields.
type RecordDecl struct {
	TagPos ctoken.Pos
	Type   *StructType
}

// Pos implements Node.
func (d *RecordDecl) Pos() ctoken.Pos { return d.TagPos }

// EnumDecl declares an enum with its enumerators.
type EnumDecl struct {
	TagPos ctoken.Pos
	Type   *EnumType
	// Values holds enumerator initializers by name (nil Expr for implicit).
	Values []EnumValue
}

// EnumValue is one enumerator.
type EnumValue struct {
	Name    string
	NamePos ctoken.Pos
	Value   Expr // may be nil
}

// Pos implements Node.
func (d *EnumDecl) Pos() ctoken.Pos { return d.TagPos }

// ---------------------------------------------------------------------------
// Statements

// Stmt is implemented by all statement nodes.
type Stmt interface {
	Node
	stmtNode()
}

// CompoundStmt is a brace-enclosed block.
type CompoundStmt struct {
	Lbrace ctoken.Pos
	List   []Stmt
}

// ExprStmt is an expression statement; Expr may be nil for ";".
type ExprStmt struct {
	SemiPos ctoken.Pos
	X       Expr
}

// DeclStmt wraps local declarations.
type DeclStmt struct {
	Decls []*VarDecl
}

// IfStmt is an if/else.
type IfStmt struct {
	IfPos ctoken.Pos
	Cond  Expr
	Then  Stmt
	Else  Stmt // may be nil
}

// WhileStmt is a while loop.
type WhileStmt struct {
	WhilePos ctoken.Pos
	Cond     Expr
	Body     Stmt
}

// DoWhileStmt is a do { } while loop.
type DoWhileStmt struct {
	DoPos ctoken.Pos
	Body  Stmt
	Cond  Expr
}

// ForStmt is a for loop; Init/Cond/Post may be nil. Init may be an
// ExprStmt or DeclStmt.
type ForStmt struct {
	ForPos ctoken.Pos
	Init   Stmt
	Cond   Expr
	Post   Expr
	Body   Stmt
}

// SwitchStmt is a switch.
type SwitchStmt struct {
	SwitchPos ctoken.Pos
	Tag       Expr
	Body      Stmt // normally a CompoundStmt containing CaseStmt nodes
}

// CaseStmt is a case or default label with its trailing statements folded
// by the parser into following list entries.
type CaseStmt struct {
	CasePos ctoken.Pos
	Value   Expr // nil for default:
}

// ReturnStmt returns from a function; X may be nil.
type ReturnStmt struct {
	ReturnPos ctoken.Pos
	X         Expr
}

// BreakStmt breaks a loop or switch.
type BreakStmt struct{ BreakPos ctoken.Pos }

// ContinueStmt continues a loop.
type ContinueStmt struct{ ContinuePos ctoken.Pos }

// GotoStmt jumps to a label.
type GotoStmt struct {
	GotoPos ctoken.Pos
	Label   string
}

// LabelStmt is a label followed by a statement.
type LabelStmt struct {
	LabelPos ctoken.Pos
	Name     string
	Stmt     Stmt
}

// Pos implementations.
func (s *CompoundStmt) Pos() ctoken.Pos { return s.Lbrace }
func (s *ExprStmt) Pos() ctoken.Pos {
	if s.X != nil {
		return s.X.Pos()
	}
	return s.SemiPos
}
func (s *DeclStmt) Pos() ctoken.Pos {
	if len(s.Decls) > 0 {
		return s.Decls[0].Pos()
	}
	return ctoken.Pos{}
}
func (s *IfStmt) Pos() ctoken.Pos       { return s.IfPos }
func (s *WhileStmt) Pos() ctoken.Pos    { return s.WhilePos }
func (s *DoWhileStmt) Pos() ctoken.Pos  { return s.DoPos }
func (s *ForStmt) Pos() ctoken.Pos      { return s.ForPos }
func (s *SwitchStmt) Pos() ctoken.Pos   { return s.SwitchPos }
func (s *CaseStmt) Pos() ctoken.Pos     { return s.CasePos }
func (s *ReturnStmt) Pos() ctoken.Pos   { return s.ReturnPos }
func (s *BreakStmt) Pos() ctoken.Pos    { return s.BreakPos }
func (s *ContinueStmt) Pos() ctoken.Pos { return s.ContinuePos }
func (s *GotoStmt) Pos() ctoken.Pos     { return s.GotoPos }
func (s *LabelStmt) Pos() ctoken.Pos    { return s.LabelPos }

func (*CompoundStmt) stmtNode() {}
func (*ExprStmt) stmtNode()     {}
func (*DeclStmt) stmtNode()     {}
func (*IfStmt) stmtNode()       {}
func (*WhileStmt) stmtNode()    {}
func (*DoWhileStmt) stmtNode()  {}
func (*ForStmt) stmtNode()      {}
func (*SwitchStmt) stmtNode()   {}
func (*CaseStmt) stmtNode()     {}
func (*ReturnStmt) stmtNode()   {}
func (*BreakStmt) stmtNode()    {}
func (*ContinueStmt) stmtNode() {}
func (*GotoStmt) stmtNode()     {}
func (*LabelStmt) stmtNode()    {}

// ---------------------------------------------------------------------------
// Expressions

// Expr is implemented by all expression nodes.
type Expr interface {
	Node
	exprNode()
	// FromMacro reports whether the expression's leading token was
	// produced by macro expansion (paper §6: beliefs must not escape
	// macro abstraction boundaries).
	FromMacro() bool
}

// Ident is an identifier reference.
type Ident struct {
	Name    string
	NamePos ctoken.Pos
	Macro   bool
}

// IntLit is an integer literal with its parsed value.
type IntLit struct {
	LitPos ctoken.Pos
	Text   string
	Value  int64
	Macro  bool
}

// FloatLit is a floating literal.
type FloatLit struct {
	LitPos ctoken.Pos
	Text   string
	Macro  bool
}

// CharLit is a character literal.
type CharLit struct {
	LitPos ctoken.Pos
	Text   string
	Value  int64
	Macro  bool
}

// StringLit is a string literal (concatenations folded).
type StringLit struct {
	LitPos ctoken.Pos
	Text   string
	Macro  bool
}

// UnaryExpr covers prefix operators: * & - + ! ~ ++ -- sizeof.
type UnaryExpr struct {
	OpPos ctoken.Pos
	Op    ctoken.Kind
	X     Expr
	Macro bool
}

// PostfixExpr covers postfix ++ and --.
type PostfixExpr struct {
	Op ctoken.Kind
	X  Expr
}

// BinaryExpr is a binary operation.
type BinaryExpr struct {
	Op   ctoken.Kind
	X, Y Expr
}

// AssignExpr is an assignment, possibly compound (+=, ...).
type AssignExpr struct {
	Op   ctoken.Kind // Assign, AddAssign, ...
	L, R Expr
}

// CondExpr is the ternary operator.
type CondExpr struct {
	Cond       Expr
	Then, Else Expr
}

// CallExpr is a function call.
type CallExpr struct {
	Fun    Expr
	Lparen ctoken.Pos
	Args   []Expr
}

// IndexExpr is subscripting.
type IndexExpr struct {
	X     Expr
	Index Expr
}

// MemberExpr is p.f or p->f.
type MemberExpr struct {
	X      Expr
	Arrow  bool // true for ->
	Member string
	MemPos ctoken.Pos
}

// CastExpr is (type)x.
type CastExpr struct {
	LparenPos ctoken.Pos
	To        Type
	X         Expr
}

// SizeofTypeExpr is sizeof(type).
type SizeofTypeExpr struct {
	SizeofPos ctoken.Pos
	Of        Type
}

// CommaExpr is the comma operator.
type CommaExpr struct {
	X, Y Expr
}

// InitListExpr is a brace initializer { a, b, .f = c }.
type InitListExpr struct {
	LbracePos ctoken.Pos
	// Items lists initializer expressions; Designators[i] holds the
	// ".field" name for designated initializers ("" otherwise).
	Items       []Expr
	Designators []string
}

// Pos implementations.
func (e *Ident) Pos() ctoken.Pos          { return e.NamePos }
func (e *IntLit) Pos() ctoken.Pos         { return e.LitPos }
func (e *FloatLit) Pos() ctoken.Pos       { return e.LitPos }
func (e *CharLit) Pos() ctoken.Pos        { return e.LitPos }
func (e *StringLit) Pos() ctoken.Pos      { return e.LitPos }
func (e *UnaryExpr) Pos() ctoken.Pos      { return e.OpPos }
func (e *PostfixExpr) Pos() ctoken.Pos    { return e.X.Pos() }
func (e *BinaryExpr) Pos() ctoken.Pos     { return e.X.Pos() }
func (e *AssignExpr) Pos() ctoken.Pos     { return e.L.Pos() }
func (e *CondExpr) Pos() ctoken.Pos       { return e.Cond.Pos() }
func (e *CallExpr) Pos() ctoken.Pos       { return e.Fun.Pos() }
func (e *IndexExpr) Pos() ctoken.Pos      { return e.X.Pos() }
func (e *MemberExpr) Pos() ctoken.Pos     { return e.X.Pos() }
func (e *CastExpr) Pos() ctoken.Pos       { return e.LparenPos }
func (e *SizeofTypeExpr) Pos() ctoken.Pos { return e.SizeofPos }
func (e *CommaExpr) Pos() ctoken.Pos      { return e.X.Pos() }
func (e *InitListExpr) Pos() ctoken.Pos   { return e.LbracePos }

func (*Ident) exprNode()          {}
func (*IntLit) exprNode()         {}
func (*FloatLit) exprNode()       {}
func (*CharLit) exprNode()        {}
func (*StringLit) exprNode()      {}
func (*UnaryExpr) exprNode()      {}
func (*PostfixExpr) exprNode()    {}
func (*BinaryExpr) exprNode()     {}
func (*AssignExpr) exprNode()     {}
func (*CondExpr) exprNode()       {}
func (*CallExpr) exprNode()       {}
func (*IndexExpr) exprNode()      {}
func (*MemberExpr) exprNode()     {}
func (*CastExpr) exprNode()       {}
func (*SizeofTypeExpr) exprNode() {}
func (*CommaExpr) exprNode()      {}
func (*InitListExpr) exprNode()   {}

// FromMacro implementations.
func (e *Ident) FromMacro() bool          { return e.Macro }
func (e *IntLit) FromMacro() bool         { return e.Macro }
func (e *FloatLit) FromMacro() bool       { return e.Macro }
func (e *CharLit) FromMacro() bool        { return e.Macro }
func (e *StringLit) FromMacro() bool      { return e.Macro }
func (e *UnaryExpr) FromMacro() bool      { return e.Macro }
func (e *PostfixExpr) FromMacro() bool    { return e.X.FromMacro() }
func (e *BinaryExpr) FromMacro() bool     { return e.X.FromMacro() }
func (e *AssignExpr) FromMacro() bool     { return e.L.FromMacro() }
func (e *CondExpr) FromMacro() bool       { return e.Cond.FromMacro() }
func (e *CallExpr) FromMacro() bool       { return e.Fun.FromMacro() }
func (e *IndexExpr) FromMacro() bool      { return e.X.FromMacro() }
func (e *MemberExpr) FromMacro() bool     { return e.X.FromMacro() }
func (e *CastExpr) FromMacro() bool       { return e.X.FromMacro() }
func (e *SizeofTypeExpr) FromMacro() bool { return false }
func (e *CommaExpr) FromMacro() bool      { return e.X.FromMacro() }
func (e *InitListExpr) FromMacro() bool   { return false }
