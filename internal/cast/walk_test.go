package cast

import (
	"strings"
	"testing"

	"deviant/internal/ctoken"
)

// buildKitchenSink constructs a tree touching every node kind by hand, so
// the walker and printer are exercised without depending on the parser.
func buildKitchenSink() *File {
	p := ctoken.Pos{File: "k.c", Line: 1, Col: 1}
	id := func(n string) *Ident { return &Ident{Name: n, NamePos: p} }
	lit := func(v int64) *IntLit { return &IntLit{Text: "1", Value: v, LitPos: p} }

	intT := &BasicType{Name: "int"}
	body := &CompoundStmt{Lbrace: p, List: []Stmt{
		&DeclStmt{Decls: []*VarDecl{{Name: "v", NamePos: p, Type: intT, Init: lit(1)}}},
		&IfStmt{IfPos: p, Cond: id("c"),
			Then: &ExprStmt{X: &CallExpr{Fun: id("f"), Lparen: p}},
			Else: &ExprStmt{X: &CallExpr{Fun: id("g"), Lparen: p}}},
		&WhileStmt{WhilePos: p, Cond: id("w"), Body: &ExprStmt{X: &PostfixExpr{Op: ctoken.Inc, X: id("v")}}},
		&DoWhileStmt{DoPos: p, Body: &ExprStmt{SemiPos: p}, Cond: id("d")},
		&ForStmt{ForPos: p,
			Init: &ExprStmt{X: &AssignExpr{Op: ctoken.Assign, L: id("i"), R: lit(0)}},
			Cond: &BinaryExpr{Op: ctoken.Lt, X: id("i"), Y: lit(4)},
			Post: &PostfixExpr{Op: ctoken.Inc, X: id("i")},
			Body: &ExprStmt{SemiPos: p}},
		&SwitchStmt{SwitchPos: p, Tag: id("t"), Body: &CompoundStmt{Lbrace: p, List: []Stmt{
			&CaseStmt{CasePos: p, Value: lit(1)},
			&BreakStmt{BreakPos: p},
			&CaseStmt{CasePos: p},
			&ContinueStmt{ContinuePos: p},
		}}},
		&GotoStmt{GotoPos: p, Label: "out"},
		&LabelStmt{LabelPos: p, Name: "out", Stmt: &ReturnStmt{ReturnPos: p, X: &CommaExpr{
			X: &CondExpr{Cond: id("c"), Then: lit(1), Else: lit(2)},
			Y: &CastExpr{LparenPos: p, To: &PointerType{Elem: intT}, X: &UnaryExpr{Op: ctoken.Amp, OpPos: p, X: id("v")}},
		}}},
		&ExprStmt{X: &IndexExpr{X: &MemberExpr{X: id("s"), Member: "arr", MemPos: p}, Index: lit(0)}},
		&ExprStmt{X: &MemberExpr{X: id("q"), Arrow: true, Member: "f", MemPos: p}},
		&ExprStmt{X: &SizeofTypeExpr{SizeofPos: p, Of: intT}},
		&ExprStmt{X: &UnaryExpr{Op: ctoken.KwSizeof, OpPos: p, X: id("v")}},
		&ExprStmt{X: &StringLit{Text: `"s"`, LitPos: p}},
		&ExprStmt{X: &CharLit{Text: "'c'", Value: 'c', LitPos: p}},
		&ExprStmt{X: &FloatLit{Text: "1.5", LitPos: p}},
	}}
	fn := &FuncDecl{Name: "kitchen", NamePos: p, Ret: intT,
		Params: []*ParamDecl{{Name: "c", NamePos: p, Type: intT}},
		Body:   body}
	rec := &RecordDecl{TagPos: p, Type: &StructType{Tag: "r", Fields: []*FieldDecl{{Name: "a", NamePos: p, Type: intT}}}}
	enum := &EnumDecl{TagPos: p, Type: &EnumType{Tag: "e", Enumerats: []string{"A"}},
		Values: []EnumValue{{Name: "A", NamePos: p, Value: lit(0)}}}
	td := &TypedefDecl{Name: "mytype", NamePos: p, Type: intT}
	gv := &VarDecl{Name: "glob", NamePos: p, Type: intT,
		Init: &InitListExpr{LbracePos: p, Items: []Expr{lit(1)}, Designators: []string{"x"}}}
	return &File{Name: "k.c", Decls: []Node{rec, enum, td, gv, fn}}
}

func TestInspectVisitsEveryKind(t *testing.T) {
	f := buildKitchenSink()
	seen := map[string]bool{}
	Inspect(f, func(n Node) bool {
		switch n.(type) {
		case *File:
			seen["file"] = true
		case *FuncDecl:
			seen["func"] = true
		case *RecordDecl:
			seen["record"] = true
		case *EnumDecl:
			seen["enum"] = true
		case *TypedefDecl:
			seen["typedef"] = true
		case *VarDecl:
			seen["var"] = true
		case *ParamDecl:
			seen["param"] = true
		case *IfStmt:
			seen["if"] = true
		case *WhileStmt:
			seen["while"] = true
		case *DoWhileStmt:
			seen["dowhile"] = true
		case *ForStmt:
			seen["for"] = true
		case *SwitchStmt:
			seen["switch"] = true
		case *CaseStmt:
			seen["case"] = true
		case *BreakStmt:
			seen["break"] = true
		case *ContinueStmt:
			seen["continue"] = true
		case *GotoStmt:
			seen["goto"] = true
		case *LabelStmt:
			seen["label"] = true
		case *ReturnStmt:
			seen["return"] = true
		case *CondExpr:
			seen["cond"] = true
		case *CommaExpr:
			seen["comma"] = true
		case *CastExpr:
			seen["cast"] = true
		case *UnaryExpr:
			seen["unary"] = true
		case *PostfixExpr:
			seen["postfix"] = true
		case *IndexExpr:
			seen["index"] = true
		case *MemberExpr:
			seen["member"] = true
		case *SizeofTypeExpr:
			seen["sizeoftype"] = true
		case *InitListExpr:
			seen["initlist"] = true
		case *StringLit:
			seen["string"] = true
		case *CharLit:
			seen["char"] = true
		case *FloatLit:
			seen["float"] = true
		}
		return true
	})
	for _, want := range []string{
		"file", "func", "record", "enum", "typedef", "var", "param",
		"if", "while", "dowhile", "for", "switch", "case", "break",
		"continue", "goto", "label", "return", "cond", "comma", "cast",
		"unary", "postfix", "index", "member", "sizeoftype", "initlist",
		"string", "char", "float",
	} {
		if !seen[want] {
			t.Errorf("Inspect never visited %s", want)
		}
	}
}

func TestExprStringAllKinds(t *testing.T) {
	p := ctoken.Pos{Line: 1, Col: 1}
	id := func(n string) *Ident { return &Ident{Name: n, NamePos: p} }
	cases := []struct {
		e    Expr
		want string
	}{
		{&CondExpr{Cond: id("c"), Then: id("a"), Else: id("b")}, "c ? a : b"},
		{&CommaExpr{X: id("a"), Y: id("b")}, "a, b"},
		{&CastExpr{To: &PointerType{Elem: &BasicType{Name: "void"}}, X: id("p")}, "(void *)p"},
		{&SizeofTypeExpr{Of: &BasicType{Name: "long"}}, "sizeof(long)"},
		{&UnaryExpr{Op: ctoken.KwSizeof, X: id("v")}, "sizeof(v)"},
		{&PostfixExpr{Op: ctoken.Dec, X: id("n")}, "n--"},
		{&IndexExpr{X: id("a"), Index: &IntLit{Text: "3", Value: 3}}, "a[3]"},
		{&InitListExpr{Items: []Expr{id("x"), id("y")}, Designators: []string{"f", ""}}, "{.f = x, y}"},
		{&FloatLit{Text: "2.5"}, "2.5"},
		{&CharLit{Text: "'z'"}, "'z'"},
		{&AssignExpr{Op: ctoken.AddAssign, L: id("a"), R: id("b")}, "a += b"},
		{&MemberExpr{X: id("s"), Member: "f"}, "s.f"},
	}
	for _, c := range cases {
		if got := ExprString(c.e); got != c.want {
			t.Errorf("got %q want %q", got, c.want)
		}
	}
	if got := ExprString(nil); got != "<nil>" {
		t.Errorf("nil expr: %q", got)
	}
}

func TestFuncTypeString(t *testing.T) {
	ft := &FuncType{
		Ret: &BasicType{Name: "int"},
		Params: []*ParamDecl{
			{Name: "a", Type: &BasicType{Name: "int"}},
			{Name: "b", Type: &PointerType{Elem: &BasicType{Name: "char"}}},
		},
		Variadic: true,
	}
	got := ft.TypeString()
	if !strings.Contains(got, "int (*)(int, char *, ...)") {
		t.Errorf("func type: %q", got)
	}
	if ft.IsPointer() {
		t.Error("function type is not a pointer")
	}
}

func TestCallsOnKitchenSink(t *testing.T) {
	f := buildKitchenSink()
	calls := Calls(f)
	if len(calls) != 2 {
		t.Fatalf("calls: %d", len(calls))
	}
	if CalleeName(calls[0]) != "f" || CalleeName(calls[1]) != "g" {
		t.Errorf("callees: %s, %s", CalleeName(calls[0]), CalleeName(calls[1]))
	}
	// Non-ident callee returns "".
	indirect := &CallExpr{Fun: &UnaryExpr{Op: ctoken.Star, X: &Ident{Name: "fp"}}}
	if CalleeName(indirect) != "" {
		t.Error("indirect call should have empty callee name")
	}
}

func TestStmtAndExprPositions(t *testing.T) {
	f := buildKitchenSink()
	Inspect(f, func(n Node) bool {
		// Pos must never panic; most nodes carry the same synthetic pos.
		_ = n.Pos()
		return true
	})
	es := &ExprStmt{SemiPos: ctoken.Pos{Line: 9, Col: 9}}
	if es.Pos().Line != 9 {
		t.Error("empty expr stmt uses semi pos")
	}
	ds := &DeclStmt{}
	if ds.Pos().IsValid() {
		t.Error("empty decl stmt has no valid pos")
	}
}
