package csem

import (
	"testing"

	"deviant/internal/cast"
	"deviant/internal/cparse"
)

func analyze(t *testing.T, srcs ...string) *Program {
	t.Helper()
	var files []*cast.File
	for i, src := range srcs {
		f, errs := cparse.ParseSource("t"+string(rune('0'+i))+".c", src)
		if len(errs) != 0 {
			t.Fatalf("parse: %v", errs)
		}
		files = append(files, f)
	}
	return Analyze(files)
}

func TestIndexes(t *testing.T) {
	p := analyze(t, `
int counter;
static struct dev *devices;
int probe(void);
int probe(void) { return 0; }
void helper(int x) { }
`)
	if len(p.Funcs) != 2 {
		t.Errorf("funcs: %v", p.FuncNames())
	}
	if _, ok := p.Funcs["probe"]; !ok {
		t.Error("probe should be a definition")
	}
	if _, ok := p.Protos["probe"]; ok {
		t.Error("definition shadows prototype")
	}
	if len(p.Globals) != 2 {
		t.Errorf("globals: %v", p.GlobalNames())
	}
	if !p.IsFunc("probe") || !p.IsFunc("helper") || p.IsFunc("counter") {
		t.Error("IsFunc classification")
	}
}

func TestInterfaceFromDesignatedInit(t *testing.T) {
	p := analyze(t, `
struct file_operations { int (*open)(void); int (*release)(void); };
int a_open(void) { return 0; }
int a_release(void) { return 0; }
int b_open(void) { return 0; }
int b_release(void) { return 0; }
struct file_operations a_fops = { .open = a_open, .release = a_release };
struct file_operations b_fops = { .open = b_open, .release = b_release };
`)
	classes := p.InterfaceClasses()
	open := classes["struct file_operations.open"]
	if len(open) != 2 || open[0] != "a_open" || open[1] != "b_open" {
		t.Errorf("open class: %v (all: %v)", open, classes)
	}
	rel := classes["struct file_operations.release"]
	if len(rel) != 2 {
		t.Errorf("release class: %v", rel)
	}
}

func TestInterfaceFromPositionalInit(t *testing.T) {
	p := analyze(t, `
struct ops { int (*start)(void); int (*stop)(void); };
int s1(void) { return 0; }
int t1(void) { return 0; }
int s2(void) { return 0; }
int t2(void) { return 0; }
struct ops x = { s1, t1 };
struct ops y = { s2, t2 };
`)
	classes := p.InterfaceClasses()
	if got := classes["struct ops.start"]; len(got) != 2 {
		t.Errorf("start class: %v (all %v)", got, classes)
	}
	if got := classes["struct ops.stop"]; len(got) != 2 {
		t.Errorf("stop class: %v", got)
	}
}

func TestInterfaceFromAssignment(t *testing.T) {
	p := analyze(t, `
int h1(int irq) { return 0; }
int h2(int irq) { return 0; }
void setup(struct dev *d, struct dev *e) {
	d->handler = h1;
	e->handler = h2;
}
`)
	classes := p.InterfaceClasses()
	if got := classes[".handler"]; len(got) != 2 {
		t.Errorf("handler class: %v (all %v)", got, classes)
	}
}

func TestInterfaceFromCallArgument(t *testing.T) {
	p := analyze(t, `
int intr_a(int irq) { return 0; }
int intr_b(int irq) { return 0; }
void init(void) {
	request_irq(3, intr_a);
	request_irq(4, intr_b);
}
`)
	classes := p.InterfaceClasses()
	if got := classes["arg:request_irq:1"]; len(got) != 2 {
		t.Errorf("irq class: %v (all %v)", got, classes)
	}
}

func TestSingletonClassesDropped(t *testing.T) {
	p := analyze(t, `
int only(void) { return 0; }
struct ops { int (*f)(void); };
struct ops o = { .f = only };
`)
	if len(p.InterfaceClasses()) != 0 {
		t.Errorf("singleton class kept: %v", p.InterfaceClasses())
	}
}

func TestAmpersandFunctionRef(t *testing.T) {
	p := analyze(t, `
int cb1(void) { return 0; }
int cb2(void) { return 0; }
struct ops { int (*f)(void); };
struct ops a = { .f = &cb1 };
struct ops b = { .f = &cb2 };
`)
	if got := p.InterfaceClasses()["struct ops.f"]; len(got) != 2 {
		t.Errorf("&fn refs: %v", got)
	}
}

func TestTypedefStructInit(t *testing.T) {
	p := analyze(t, `
typedef struct ops { int (*go)(void); } ops_t;
int g1(void) { return 0; }
int g2(void) { return 0; }
ops_t a = { .go = g1 };
ops_t b = { .go = g2 };
`)
	if got := p.InterfaceClasses()["struct ops.go"]; len(got) != 2 {
		t.Errorf("typedef resolution: %v (all %v)", got, p.InterfaceClasses())
	}
}

func TestRecordsIndexed(t *testing.T) {
	p := analyze(t, "struct foo { int a; int b; };")
	st, ok := p.Records["struct foo"]
	if !ok || len(st.Fields) != 2 {
		t.Errorf("records: %v", p.Records)
	}
}

func TestMultiFileMerge(t *testing.T) {
	p := analyze(t,
		"int shared(void) { return 1; }",
		"int shared2(void) { return 2; }",
	)
	if len(p.Funcs) != 2 {
		t.Errorf("multi-file funcs: %v", p.FuncNames())
	}
}
