// Package csem builds program-level semantic information over a set of
// parsed translation units: function and global indexes, and the
// interface equivalence classes of Section 4.2 ("routines whose addresses
// are assigned to the same function pointer or passed as arguments to the
// same function tend to implement the same abstract interface").
package csem

import (
	"sort"
	"strconv"

	"deviant/internal/cast"
)

// Program is the semantic index of one analyzed code base.
type Program struct {
	Files []*cast.File
	// Funcs maps names to definitions (bodies present).
	Funcs map[string]*cast.FuncDecl
	// Protos maps names to prototypes without bodies seen anywhere.
	Protos map[string]*cast.FuncDecl
	// Globals maps names of file-scope variables to their declarations.
	Globals map[string]*cast.VarDecl
	// Records maps "struct tag" to the struct definition.
	Records map[string]*cast.StructType
	// interfaces maps equivalence-class keys to member function names.
	interfaces map[string][]string
}

// Analyze indexes files.
func Analyze(files []*cast.File) *Program {
	p := &Program{
		Files:      files,
		Funcs:      make(map[string]*cast.FuncDecl),
		Protos:     make(map[string]*cast.FuncDecl),
		Globals:    make(map[string]*cast.VarDecl),
		Records:    make(map[string]*cast.StructType),
		interfaces: make(map[string][]string),
	}
	for _, f := range files {
		for _, d := range f.Decls {
			switch x := d.(type) {
			case *cast.FuncDecl:
				if x.Body != nil {
					p.Funcs[x.Name] = x
				} else if _, defined := p.Funcs[x.Name]; !defined {
					p.Protos[x.Name] = x
				}
			case *cast.VarDecl:
				p.Globals[x.Name] = x
			case *cast.RecordDecl:
				if x.Type.Tag != "" && len(x.Type.Fields) > 0 {
					p.Records[x.Type.TypeString()] = x.Type
				}
			}
		}
	}
	// A prototype seen before its definition must not linger.
	for name := range p.Funcs {
		delete(p.Protos, name)
	}
	p.buildInterfaces()
	return p
}

// FuncNames returns the names of all defined functions, sorted.
func (p *Program) FuncNames() []string {
	names := make([]string, 0, len(p.Funcs))
	for n := range p.Funcs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// GlobalNames returns the names of all file-scope variables, sorted.
func (p *Program) GlobalNames() []string {
	names := make([]string, 0, len(p.Globals))
	for n := range p.Globals {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// IsFunc reports whether name names a defined or declared function.
func (p *Program) IsFunc(name string) bool {
	if _, ok := p.Funcs[name]; ok {
		return true
	}
	_, ok := p.Protos[name]
	return ok
}

// InterfaceClasses returns every equivalence class with at least two
// members, as (class key, sorted member names) pairs sorted by key. All
// members of a class are believed to implement the same abstract
// interface, so cross-checking their beliefs is sound (§4.2).
func (p *Program) InterfaceClasses() map[string][]string {
	out := make(map[string][]string, len(p.interfaces))
	for k, members := range p.interfaces {
		set := map[string]bool{}
		for _, m := range members {
			set[m] = true
		}
		if len(set) < 2 {
			continue
		}
		uniq := make([]string, 0, len(set))
		for m := range set {
			uniq = append(uniq, m)
		}
		sort.Strings(uniq)
		out[k] = uniq
	}
	return out
}

func (p *Program) addInterfaceMember(class, fn string) {
	p.interfaces[class] = append(p.interfaces[class], fn)
}

// buildInterfaces finds the function-pointer idioms that relate code
// abstractly:
//
//  1. designated initializers of struct-typed globals: ".ioctl = my_ioctl"
//     joins class "struct file_operations.ioctl";
//  2. positional initializers of struct-typed globals resolve through the
//     record's field list;
//  3. assignments through a member: "dev->open = my_open" joins class
//     ".open" (field name only — the base type is not always known);
//  4. function names passed to the same callee argument slot:
//     "register_handler(dev, my_intr)" joins "arg:register_handler:1".
func (p *Program) buildInterfaces() {
	for _, f := range p.Files {
		for _, d := range f.Decls {
			vd, ok := d.(*cast.VarDecl)
			if !ok || vd.Init == nil {
				continue
			}
			il, ok := vd.Init.(*cast.InitListExpr)
			if !ok {
				continue
			}
			st := p.structOf(vd.Type)
			for i, item := range il.Items {
				fn := p.funcNameOf(item)
				if fn == "" {
					continue
				}
				field := il.Designators[i]
				if field == "" && st != nil && i < len(st.Fields) {
					field = st.Fields[i].Name
				}
				if field == "" {
					continue
				}
				class := "." + field
				if st != nil {
					class = st.TypeString() + "." + field
				}
				p.addInterfaceMember(class, fn)
			}
		}
		cast.Inspect(f, func(n cast.Node) bool {
			switch x := n.(type) {
			case *cast.AssignExpr:
				if m, ok := x.L.(*cast.MemberExpr); ok {
					if fn := p.funcNameOf(x.R); fn != "" {
						p.addInterfaceMember("."+m.Member, fn)
					}
				}
			case *cast.CallExpr:
				callee := cast.CalleeName(x)
				if callee == "" {
					return true
				}
				for i, a := range x.Args {
					if fn := p.funcNameOf(a); fn != "" {
						p.addInterfaceMember("arg:"+callee+":"+strconv.Itoa(i), fn)
					}
				}
			}
			return true
		})
	}
}

// structOf resolves a declaration type to its struct definition, following
// typedefs and the record table.
func (p *Program) structOf(t cast.Type) *cast.StructType {
	u := cast.Unwrap(t)
	st, ok := u.(*cast.StructType)
	if !ok {
		return nil
	}
	if len(st.Fields) == 0 && st.Tag != "" {
		if def, ok := p.Records[st.TypeString()]; ok {
			return def
		}
	}
	return st
}

// funcNameOf returns the function name if e denotes a defined function
// (optionally via unary & or a cast), else "".
func (p *Program) funcNameOf(e cast.Expr) string {
	e = cast.StripParensAndCasts(e)
	if u, ok := e.(*cast.UnaryExpr); ok {
		e = cast.StripParensAndCasts(u.X)
	}
	id, ok := e.(*cast.Ident)
	if !ok {
		return ""
	}
	if _, defined := p.Funcs[id.Name]; defined {
		return id.Name
	}
	return ""
}
