package ctoken

import (
	"testing"
)

// FuzzScanner feeds arbitrary bytes through the scanner. Invariants: no
// panic, the token stream is non-empty and EOF-terminated, every position
// is sane, and scanning is deterministic.
func FuzzScanner(f *testing.F) {
	f.Add("int main(void) { return 0; }\n")
	f.Add("\"unterminated\nx ' y /* open comment")
	f.Add("0x1fULL 1e9f .5 'a' '\\n' \"s\\\"t\"\n")
	f.Add("a->b ... >>= <<= ## # ??( $ @ `\n")
	f.Add("/* nested /* not */ still code */ id\n")
	f.Add("#define M(x) x##_t\nM(foo)\n")
	f.Add("\x00\xff\xfe binary \x01 junk")
	f.Fuzz(func(t *testing.T, src string) {
		toks := NewScanner("fuzz.c", src).ScanAll()
		if len(toks) == 0 {
			t.Fatal("empty token stream")
		}
		if toks[len(toks)-1].Kind != EOF {
			t.Fatalf("stream not EOF-terminated: last kind %v", toks[len(toks)-1].Kind)
		}
		for i, tok := range toks {
			if tok.Pos.Line < 1 || tok.Pos.Col < 1 {
				t.Fatalf("token %d has degenerate position %v", i, tok.Pos)
			}
		}
		again := NewScanner("fuzz.c", src).ScanAll()
		if len(again) != len(toks) {
			t.Fatalf("non-deterministic: %d vs %d tokens", len(toks), len(again))
		}
		for i := range toks {
			if toks[i] != again[i] {
				t.Fatalf("non-deterministic at token %d: %+v vs %+v", i, toks[i], again[i])
			}
		}
	})
}
