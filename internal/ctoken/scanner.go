package ctoken

import (
	"fmt"
	"strings"
)

// Scanner tokenizes C source text. It is used both by the preprocessor
// (with KeepNewlines and KeepHash set, since directives are line oriented)
// and, conceptually, by anything that wants a raw token stream.
type Scanner struct {
	src  string
	file string
	off  int
	line int
	col  int

	// KeepNewlines emits Newline tokens at line ends instead of skipping
	// them; the preprocessor needs them to delimit directives.
	KeepNewlines bool

	errs []error
}

// NewScanner returns a scanner over src, reporting positions against file.
func NewScanner(file, src string) *Scanner {
	return &Scanner{src: src, file: file, line: 1, col: 1}
}

// Errs returns accumulated scan errors.
func (s *Scanner) Errs() []error { return s.errs }

func (s *Scanner) errorf(p Pos, format string, args ...any) {
	s.errs = append(s.errs, fmt.Errorf("%s: %s", p, fmt.Sprintf(format, args...)))
}

func (s *Scanner) pos() Pos { return Pos{File: s.file, Line: s.line, Col: s.col} }

func (s *Scanner) peek() byte {
	if s.off >= len(s.src) {
		return 0
	}
	return s.src[s.off]
}

func (s *Scanner) peekAt(n int) byte {
	if s.off+n >= len(s.src) {
		return 0
	}
	return s.src[s.off+n]
}

func (s *Scanner) advance() byte {
	c := s.src[s.off]
	s.off++
	if c == '\n' {
		s.line++
		s.col = 1
	} else {
		s.col++
	}
	return c
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentCont(c byte) bool { return isIdentStart(c) || isDigit(c) }

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// ScanAll returns every token in the input, ending with an EOF token.
func (s *Scanner) ScanAll() []Token {
	var toks []Token
	for {
		t := s.Next()
		toks = append(toks, t)
		if t.Kind == EOF {
			return toks
		}
	}
}

// Next returns the next token.
func (s *Scanner) Next() Token {
	for {
		// Skip whitespace (maybe emitting newlines) and comments.
		for s.off < len(s.src) {
			c := s.peek()
			if c == '\n' {
				p := s.pos()
				s.advance()
				if s.KeepNewlines {
					return Token{Kind: Newline, Pos: p}
				}
				continue
			}
			if c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f' {
				s.advance()
				continue
			}
			if c == '\\' && s.peekAt(1) == '\n' { // line continuation
				s.advance()
				s.advance()
				continue
			}
			if c == '/' && s.peekAt(1) == '/' {
				for s.off < len(s.src) && s.peek() != '\n' {
					s.advance()
				}
				continue
			}
			if c == '/' && s.peekAt(1) == '*' {
				p := s.pos()
				s.advance()
				s.advance()
				closed := false
				for s.off < len(s.src) {
					if s.peek() == '*' && s.peekAt(1) == '/' {
						s.advance()
						s.advance()
						closed = true
						break
					}
					s.advance()
				}
				if !closed {
					s.errorf(p, "unterminated block comment")
				}
				continue
			}
			break
		}

		if s.off >= len(s.src) {
			return Token{Kind: EOF, Pos: s.pos()}
		}

		p := s.pos()
		c := s.peek()
		switch {
		case isIdentStart(c):
			start := s.off
			for s.off < len(s.src) && isIdentCont(s.peek()) {
				s.advance()
			}
			text := s.src[start:s.off]
			kind := KeywordKind(text)
			if kind == Ident {
				return Token{Kind: Ident, Text: text, Pos: p}
			}
			return Token{Kind: kind, Text: text, Pos: p}
		case isDigit(c) || (c == '.' && isDigit(s.peekAt(1))):
			return s.scanNumber(p)
		case c == '\'':
			return s.scanChar(p)
		case c == '"':
			return s.scanString(p)
		default:
			return s.scanOperator(p)
		}
	}
}

func (s *Scanner) scanNumber(p Pos) Token {
	start := s.off
	isFloat := false
	if s.peek() == '0' && (s.peekAt(1) == 'x' || s.peekAt(1) == 'X') {
		s.advance()
		s.advance()
		for s.off < len(s.src) && isHex(s.peek()) {
			s.advance()
		}
	} else {
		for s.off < len(s.src) && isDigit(s.peek()) {
			s.advance()
		}
		if s.peek() == '.' {
			isFloat = true
			s.advance()
			for s.off < len(s.src) && isDigit(s.peek()) {
				s.advance()
			}
		}
		if s.peek() == 'e' || s.peek() == 'E' {
			if isDigit(s.peekAt(1)) || ((s.peekAt(1) == '+' || s.peekAt(1) == '-') && isDigit(s.peekAt(2))) {
				isFloat = true
				s.advance()
				if s.peek() == '+' || s.peek() == '-' {
					s.advance()
				}
				for s.off < len(s.src) && isDigit(s.peek()) {
					s.advance()
				}
			}
		}
	}
	// Integer/float suffixes.
	for s.off < len(s.src) && strings.ContainsRune("uUlLfF", rune(s.peek())) {
		if s.peek() == 'f' || s.peek() == 'F' {
			isFloat = true
		}
		s.advance()
	}
	text := s.src[start:s.off]
	if isFloat {
		return Token{Kind: FloatLit, Text: text, Pos: p}
	}
	return Token{Kind: IntLit, Text: text, Pos: p}
}

func isHex(c byte) bool {
	return isDigit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
}

func (s *Scanner) scanChar(p Pos) Token {
	start := s.off
	s.advance() // opening quote
	for s.off < len(s.src) {
		c := s.peek()
		if c == '\\' {
			s.advance()
			if s.off < len(s.src) {
				s.advance()
			}
			continue
		}
		if c == '\'' || c == '\n' {
			break
		}
		s.advance()
	}
	if s.peek() == '\'' {
		s.advance()
	} else {
		s.errorf(p, "unterminated character literal")
	}
	return Token{Kind: CharLit, Text: s.src[start:s.off], Pos: p}
}

func (s *Scanner) scanString(p Pos) Token {
	start := s.off
	s.advance() // opening quote
	for s.off < len(s.src) {
		c := s.peek()
		if c == '\\' {
			s.advance()
			if s.off < len(s.src) {
				s.advance()
			}
			continue
		}
		if c == '"' || c == '\n' {
			break
		}
		s.advance()
	}
	if s.peek() == '"' {
		s.advance()
	} else {
		s.errorf(p, "unterminated string literal")
	}
	return Token{Kind: StringLit, Text: s.src[start:s.off], Pos: p}
}

// operator table ordered so longer operators are matched first.
var operators = []struct {
	text string
	kind Kind
}{
	{"...", Ellipsis},
	{"<<=", ShlAssign},
	{">>=", ShrAssign},
	{"<<", Shl},
	{">>", Shr},
	{"<=", Le},
	{">=", Ge},
	{"==", EqEq},
	{"!=", NotEq},
	{"&&", AndAnd},
	{"||", OrOr},
	{"->", Arrow},
	{"++", Inc},
	{"--", Dec},
	{"+=", AddAssign},
	{"-=", SubAssign},
	{"*=", MulAssign},
	{"/=", DivAssign},
	{"%=", ModAssign},
	{"&=", AndAssign},
	{"|=", OrAssign},
	{"^=", XorAssign},
	{"##", HashHash},
	{"(", LParen},
	{")", RParen},
	{"{", LBrace},
	{"}", RBrace},
	{"[", LBracket},
	{"]", RBracket},
	{";", Semi},
	{",", Comma},
	{":", Colon},
	{"?", Question},
	{"=", Assign},
	{"+", Plus},
	{"-", Minus},
	{"*", Star},
	{"/", Slash},
	{"%", Percent},
	{"&", Amp},
	{"|", Pipe},
	{"^", Caret},
	{"~", Tilde},
	{"!", Not},
	{"<", Lt},
	{">", Gt},
	{".", Dot},
	{"#", Hash},
}

func (s *Scanner) scanOperator(p Pos) Token {
	rest := s.src[s.off:]
	for _, op := range operators {
		if strings.HasPrefix(rest, op.text) {
			for range op.text {
				s.advance()
			}
			return Token{Kind: op.kind, Text: op.text, Pos: p}
		}
	}
	c := s.advance()
	s.errorf(p, "unexpected character %q", c)
	// Return something so the caller makes progress.
	return s.Next()
}
