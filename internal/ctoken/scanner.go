package ctoken

import (
	"fmt"
	"strings"
	"unsafe"

	"deviant/internal/intern"
)

// Scanner tokenizes C source text. It is used both by the preprocessor
// (with KeepNewlines set, since directives are line oriented) and, more
// generally, by anything that wants a raw token stream.
//
// The hot loop is table-driven: a 256-entry class table dispatches each
// leading byte to its token family, and operators resolve with a single
// switch on the first byte plus at most two lookahead bytes, replacing
// the old linear prefix-match over the operator list. Columns are not
// tracked per byte; only the offset of the current line start is, and a
// token's column is computed on demand as off-lineStart+1 (identical to
// the old per-byte count, since a column is just the byte distance from
// the last newline).
type Scanner struct {
	src       string
	file      string
	off       int
	line      int
	lineStart int // offset of the first byte of the current line

	// KeepNewlines emits Newline tokens at line ends instead of skipping
	// them; the preprocessor needs them to delimit directives.
	KeepNewlines bool

	// Interner, when set, interns identifier spellings: Ident tokens get
	// their Text rebound to the table's canonical copy, so equal names
	// share one string (pointer-fast comparison) and retained token
	// streams do not pin the source buffer.
	Interner *intern.Table

	errs []error
}

// Byte classes for the dispatch table.
const (
	clOther   byte = iota
	clSpace        // space \t \r \v \f
	clNewline      // \n
	clIdent        // _ a-z A-Z
	clDigit        // 0-9
)

// class maps a leading byte to its token family; identCont marks bytes
// that may continue an identifier (clIdent ∪ clDigit).
var (
	class     [256]byte
	identCont [256]bool
)

// kindText maps operator and keyword kinds to their canonical static
// spelling, so those tokens never carry substrings of the source.
var kindText [keywordLast]string

func init() {
	for _, c := range []byte{' ', '\t', '\r', '\v', '\f'} {
		class[c] = clSpace
	}
	class['\n'] = clNewline
	class['_'] = clIdent
	for c := 'a'; c <= 'z'; c++ {
		class[c] = clIdent
	}
	for c := 'A'; c <= 'Z'; c++ {
		class[c] = clIdent
	}
	for c := '0'; c <= '9'; c++ {
		class[c] = clDigit
	}
	for i := range identCont {
		identCont[i] = class[i] == clIdent || class[i] == clDigit
	}
	for k := Kind(LParen); k < keywordLast; k++ {
		if k == Newline || k == keywordFirst {
			continue
		}
		kindText[k] = kindNames[k]
	}
}

// NewScanner returns a scanner over src, reporting positions against file.
func NewScanner(file, src string) *Scanner {
	return &Scanner{src: src, file: file, line: 1}
}

// NewScannerBytes returns a scanner over src without copying it. The
// scanner treats the bytes as immutable; callers must not mutate src
// while any token's Text is live, since literal texts alias it.
func NewScannerBytes(file string, src []byte) *Scanner {
	s := &Scanner{file: file, line: 1}
	if len(src) > 0 {
		s.src = unsafe.String(&src[0], len(src))
	}
	return s
}

// Errs returns accumulated scan errors.
func (s *Scanner) Errs() []error { return s.errs }

func (s *Scanner) errorf(p Pos, format string, args ...any) {
	s.errs = append(s.errs, fmt.Errorf("%s: %s", p, fmt.Sprintf(format, args...)))
}

func (s *Scanner) pos() Pos {
	return Pos{File: s.file, Line: s.line, Col: s.off - s.lineStart + 1}
}

// ScanAll returns every token in the input, ending with an EOF token.
func (s *Scanner) ScanAll() []Token {
	// C source averages a handful of bytes per token; a /4 estimate
	// overshoots slightly so the append loop rarely regrows.
	toks := make([]Token, 0, len(s.src)/4+8)
	for {
		t := s.Next()
		toks = append(toks, t)
		if t.Kind == EOF {
			return toks
		}
	}
}

// Next returns the next token.
func (s *Scanner) Next() Token {
	src := s.src
	n := len(src)
	for {
		// Skip whitespace (maybe emitting newlines) and comments.
		for s.off < n {
			c := src[s.off]
			cl := class[c]
			if cl == clSpace {
				s.off++
				continue
			}
			if cl == clNewline {
				p := s.pos()
				s.off++
				s.line++
				s.lineStart = s.off
				if s.KeepNewlines {
					return Token{Kind: Newline, Pos: p}
				}
				continue
			}
			if c == '\\' && s.off+1 < n && src[s.off+1] == '\n' { // line continuation
				s.off += 2
				s.line++
				s.lineStart = s.off
				continue
			}
			if c == '/' && s.off+1 < n {
				if src[s.off+1] == '/' {
					if i := strings.IndexByte(src[s.off:], '\n'); i >= 0 {
						s.off += i
					} else {
						s.off = n
					}
					continue
				}
				if src[s.off+1] == '*' {
					s.skipBlockComment()
					continue
				}
			}
			break
		}

		if s.off >= n {
			return Token{Kind: EOF, Pos: s.pos()}
		}

		p := s.pos()
		c := src[s.off]
		switch class[c] {
		case clIdent:
			start := s.off
			s.off++
			for s.off < n && identCont[src[s.off]] {
				s.off++
			}
			text := src[start:s.off]
			if kind, ok := keywords[text]; ok {
				return Token{Kind: kind, Text: kindText[kind], Pos: p}
			}
			if tb := s.Interner; tb != nil {
				_, canon := tb.InternString(text)
				return Token{Kind: Ident, Text: canon, Pos: p}
			}
			return Token{Kind: Ident, Text: text, Pos: p}
		case clDigit:
			return s.scanNumber(p)
		default:
			if c == '.' && s.off+1 < n && class[src[s.off+1]] == clDigit {
				return s.scanNumber(p)
			}
			if c == '\'' {
				return s.scanChar(p)
			}
			if c == '"' {
				return s.scanString(p)
			}
			return s.scanOperator(p)
		}
	}
}

// skipBlockComment consumes /* ... */ starting at s.off, tracking line
// numbers with vectorized searches instead of a per-byte loop.
func (s *Scanner) skipBlockComment() {
	p := s.pos()
	body := s.off + 2
	end := strings.Index(s.src[body:], "*/")
	var stop int // one past the last byte consumed
	if end < 0 {
		s.errorf(p, "unterminated block comment")
		stop = len(s.src)
	} else {
		stop = body + end + 2
	}
	if nl := strings.Count(s.src[s.off:stop], "\n"); nl > 0 {
		s.line += nl
		s.lineStart = s.off + strings.LastIndexByte(s.src[s.off:stop], '\n') + 1
	}
	s.off = stop
}

func (s *Scanner) scanNumber(p Pos) Token {
	src := s.src
	n := len(src)
	start := s.off
	isFloat := false
	if src[s.off] == '0' && s.off+1 < n && (src[s.off+1] == 'x' || src[s.off+1] == 'X') {
		s.off += 2
		for s.off < n && isHex(src[s.off]) {
			s.off++
		}
	} else {
		for s.off < n && class[src[s.off]] == clDigit {
			s.off++
		}
		if s.off < n && src[s.off] == '.' {
			isFloat = true
			s.off++
			for s.off < n && class[src[s.off]] == clDigit {
				s.off++
			}
		}
		if s.off < n && (src[s.off] == 'e' || src[s.off] == 'E') {
			if isExpStart(src, s.off+1) {
				isFloat = true
				s.off++
				if src[s.off] == '+' || src[s.off] == '-' {
					s.off++
				}
				for s.off < n && class[src[s.off]] == clDigit {
					s.off++
				}
			}
		}
	}
	// Integer/float suffixes.
	for s.off < n {
		switch src[s.off] {
		case 'f', 'F':
			isFloat = true
		case 'u', 'U', 'l', 'L':
		default:
			goto done
		}
		s.off++
	}
done:
	text := src[start:s.off]
	if isFloat {
		return Token{Kind: FloatLit, Text: text, Pos: p}
	}
	return Token{Kind: IntLit, Text: text, Pos: p}
}

// isExpStart reports whether src[i:] begins an exponent body: a digit,
// or a sign followed by a digit.
func isExpStart(src string, i int) bool {
	if i < len(src) && class[src[i]] == clDigit {
		return true
	}
	return i+1 < len(src) && (src[i] == '+' || src[i] == '-') && class[src[i+1]] == clDigit
}

func isHex(c byte) bool {
	return class[c] == clDigit || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
}

// scanQuoted consumes a quote-delimited literal with backslash escapes,
// starting at the opening quote; it stops before an unescaped newline.
func (s *Scanner) scanQuoted(p Pos, quote byte, kind Kind, what string) Token {
	src := s.src
	n := len(src)
	start := s.off
	s.off++ // opening quote
	for s.off < n {
		c := src[s.off]
		if c == '\\' {
			s.off++
			if s.off < n {
				if src[s.off] == '\n' {
					s.line++
					s.lineStart = s.off + 1
				}
				s.off++
			}
			continue
		}
		if c == quote || c == '\n' {
			break
		}
		s.off++
	}
	if s.off < n && src[s.off] == quote {
		s.off++
	} else {
		s.errorf(p, "unterminated %s", what)
	}
	return Token{Kind: kind, Text: src[start:s.off], Pos: p}
}

func (s *Scanner) scanChar(p Pos) Token {
	return s.scanQuoted(p, '\'', CharLit, "character literal")
}

func (s *Scanner) scanString(p Pos) Token {
	return s.scanQuoted(p, '"', StringLit, "string literal")
}

// scanOperator resolves punctuation with a single switch on the leading
// byte; at most two lookahead bytes decide the multi-character forms.
func (s *Scanner) scanOperator(p Pos) Token {
	src := s.src
	c := src[s.off]
	var b1, b2 byte
	if s.off+1 < len(src) {
		b1 = src[s.off+1]
	}
	if s.off+2 < len(src) {
		b2 = src[s.off+2]
	}
	var kind Kind
	size := 1
	switch c {
	case '(':
		kind = LParen
	case ')':
		kind = RParen
	case '{':
		kind = LBrace
	case '}':
		kind = RBrace
	case '[':
		kind = LBracket
	case ']':
		kind = RBracket
	case ';':
		kind = Semi
	case ',':
		kind = Comma
	case ':':
		kind = Colon
	case '?':
		kind = Question
	case '~':
		kind = Tilde
	case '.':
		kind = Dot
		if b1 == '.' && b2 == '.' {
			kind, size = Ellipsis, 3
		}
	case '<':
		switch {
		case b1 == '<' && b2 == '=':
			kind, size = ShlAssign, 3
		case b1 == '<':
			kind, size = Shl, 2
		case b1 == '=':
			kind, size = Le, 2
		default:
			kind = Lt
		}
	case '>':
		switch {
		case b1 == '>' && b2 == '=':
			kind, size = ShrAssign, 3
		case b1 == '>':
			kind, size = Shr, 2
		case b1 == '=':
			kind, size = Ge, 2
		default:
			kind = Gt
		}
	case '=':
		kind = Assign
		if b1 == '=' {
			kind, size = EqEq, 2
		}
	case '!':
		kind = Not
		if b1 == '=' {
			kind, size = NotEq, 2
		}
	case '+':
		switch b1 {
		case '+':
			kind, size = Inc, 2
		case '=':
			kind, size = AddAssign, 2
		default:
			kind = Plus
		}
	case '-':
		switch b1 {
		case '-':
			kind, size = Dec, 2
		case '=':
			kind, size = SubAssign, 2
		case '>':
			kind, size = Arrow, 2
		default:
			kind = Minus
		}
	case '*':
		kind = Star
		if b1 == '=' {
			kind, size = MulAssign, 2
		}
	case '/':
		kind = Slash
		if b1 == '=' {
			kind, size = DivAssign, 2
		}
	case '%':
		kind = Percent
		if b1 == '=' {
			kind, size = ModAssign, 2
		}
	case '&':
		switch b1 {
		case '&':
			kind, size = AndAnd, 2
		case '=':
			kind, size = AndAssign, 2
		default:
			kind = Amp
		}
	case '|':
		switch b1 {
		case '|':
			kind, size = OrOr, 2
		case '=':
			kind, size = OrAssign, 2
		default:
			kind = Pipe
		}
	case '^':
		kind = Caret
		if b1 == '=' {
			kind, size = XorAssign, 2
		}
	case '#':
		kind = Hash
		if b1 == '#' {
			kind, size = HashHash, 2
		}
	default:
		s.off++
		s.errorf(p, "unexpected character %q", c)
		// Return something so the caller makes progress.
		return s.Next()
	}
	s.off += size
	return Token{Kind: kind, Text: kindText[kind], Pos: p}
}
