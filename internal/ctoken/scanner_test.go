package ctoken

import (
	"strings"
	"testing"
	"testing/quick"
)

func kinds(toks []Token) []Kind {
	ks := make([]Kind, len(toks))
	for i, t := range toks {
		ks[i] = t.Kind
	}
	return ks
}

func scan(t *testing.T, src string) []Token {
	t.Helper()
	s := NewScanner("test.c", src)
	toks := s.ScanAll()
	if errs := s.Errs(); len(errs) != 0 {
		t.Fatalf("scan errors: %v", errs)
	}
	return toks
}

func TestScanIdentifiersAndKeywords(t *testing.T) {
	toks := scan(t, "int foo while _bar baz42")
	want := []Kind{KwInt, Ident, KwWhile, Ident, Ident, EOF}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("got %v want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d: got %v want %v", i, got[i], want[i])
		}
	}
	if toks[1].Text != "foo" || toks[3].Text != "_bar" || toks[4].Text != "baz42" {
		t.Errorf("identifier texts wrong: %v", toks)
	}
}

func TestScanNumbers(t *testing.T) {
	cases := []struct {
		src  string
		kind Kind
	}{
		{"0", IntLit},
		{"42", IntLit},
		{"0x1F", IntLit},
		{"0xdeadBEEF", IntLit},
		{"077", IntLit},
		{"42UL", IntLit},
		{"1.5", FloatLit},
		{".5", FloatLit},
		{"1e10", FloatLit},
		{"1.5e-3", FloatLit},
		{"2.0f", FloatLit},
	}
	for _, c := range cases {
		toks := scan(t, c.src)
		if toks[0].Kind != c.kind {
			t.Errorf("%q: got %v want %v", c.src, toks[0].Kind, c.kind)
		}
		if toks[0].Text != c.src {
			t.Errorf("%q: text %q", c.src, toks[0].Text)
		}
	}
}

func TestScanStringsAndChars(t *testing.T) {
	toks := scan(t, `"hello \"world\"" 'a' '\n' '\''`)
	want := []Kind{StringLit, CharLit, CharLit, CharLit, EOF}
	got := kinds(toks)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("token %d: got %v want %v (all: %v)", i, got[i], want[i], toks)
		}
	}
	if toks[0].Text != `"hello \"world\""` {
		t.Errorf("string text: %q", toks[0].Text)
	}
}

func TestScanOperators(t *testing.T) {
	toks := scan(t, "a->b . c ... <<= >>= << >> <= >= == != && || ++ -- += -= ? :")
	want := []Kind{
		Ident, Arrow, Ident, Dot, Ident, Ellipsis, ShlAssign, ShrAssign,
		Shl, Shr, Le, Ge, EqEq, NotEq, AndAnd, OrOr, Inc, Dec,
		AddAssign, SubAssign, Question, Colon, EOF,
	}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("got %d tokens want %d: %v", len(got), len(want), toks)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d: got %v want %v", i, got[i], want[i])
		}
	}
}

func TestScanComments(t *testing.T) {
	toks := scan(t, "a /* comment \n over lines */ b // line\nc")
	want := []Kind{Ident, Ident, Ident, EOF}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("got %v", toks)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d: got %v want %v", i, got[i], want[i])
		}
	}
	if toks[2].Pos.Line != 3 {
		t.Errorf("c should be on line 3, got %d", toks[2].Pos.Line)
	}
}

func TestScanNewlinesKept(t *testing.T) {
	s := NewScanner("t.c", "#define X 1\nint y;\n")
	s.KeepNewlines = true
	toks := s.ScanAll()
	var nl int
	for _, tok := range toks {
		if tok.Kind == Newline {
			nl++
		}
	}
	if nl != 2 {
		t.Errorf("want 2 newlines, got %d (%v)", nl, toks)
	}
	if toks[0].Kind != Hash {
		t.Errorf("want leading #, got %v", toks[0])
	}
}

func TestScanLineContinuation(t *testing.T) {
	s := NewScanner("t.c", "#define M(x) \\\n  ((x) + 1)\nq")
	s.KeepNewlines = true
	toks := s.ScanAll()
	// The continuation must NOT produce a Newline between "M(x)" and "((x)".
	sawNewlineBeforeParen := false
	for i, tok := range toks {
		if tok.Kind == Newline && i+1 < len(toks) && toks[i+1].Kind == LParen {
			sawNewlineBeforeParen = true
		}
	}
	if sawNewlineBeforeParen {
		t.Errorf("line continuation leaked a newline: %v", toks)
	}
}

func TestScanPositions(t *testing.T) {
	toks := scan(t, "int\n  x;")
	if toks[0].Pos.Line != 1 || toks[0].Pos.Col != 1 {
		t.Errorf("int pos: %v", toks[0].Pos)
	}
	if toks[1].Pos.Line != 2 || toks[1].Pos.Col != 3 {
		t.Errorf("x pos: %v", toks[1].Pos)
	}
	if toks[1].Pos.File != "test.c" {
		t.Errorf("file: %q", toks[1].Pos.File)
	}
}

func TestScanErrorRecovery(t *testing.T) {
	s := NewScanner("t.c", "a @ b")
	toks := s.ScanAll()
	if len(s.Errs()) == 0 {
		t.Fatal("want scan error for @")
	}
	got := kinds(toks)
	want := []Kind{Ident, Ident, EOF}
	if len(got) != len(want) {
		t.Fatalf("got %v", toks)
	}
}

func TestKeywordKind(t *testing.T) {
	if KeywordKind("while") != KwWhile {
		t.Error("while")
	}
	if KeywordKind("whilex") != Ident {
		t.Error("whilex")
	}
	if !KwStruct.IsKeyword() {
		t.Error("struct should be keyword")
	}
	if Ident.IsKeyword() {
		t.Error("Ident should not be keyword")
	}
}

// Property: scanning never panics and always terminates with EOF, for
// arbitrary byte soup.
func TestScanArbitraryInputTerminates(t *testing.T) {
	f := func(src string) bool {
		s := NewScanner("fuzz.c", src)
		toks := s.ScanAll()
		return len(toks) > 0 && toks[len(toks)-1].Kind == EOF
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: for identifier-and-space inputs, token count equals field count.
func TestScanIdentifierFields(t *testing.T) {
	f := func(words []string) bool {
		var clean []string
		for _, w := range words {
			id := "x"
			for _, r := range w {
				if r >= 'a' && r <= 'z' {
					id += string(r)
				}
			}
			clean = append(clean, id)
		}
		src := strings.Join(clean, " ")
		s := NewScanner("f.c", src)
		toks := s.ScanAll()
		return len(toks) == len(clean)+1 // + EOF
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestTokenString(t *testing.T) {
	tok := Token{Kind: Ident, Text: "foo"}
	if s := tok.String(); !strings.Contains(s, "foo") {
		t.Errorf("token string %q", s)
	}
	if Arrow.String() != "->" {
		t.Errorf("arrow: %q", Arrow.String())
	}
}

func TestPosString(t *testing.T) {
	p := Pos{File: "a.c", Line: 3, Col: 7}
	if p.String() != "a.c:3:7" {
		t.Errorf("pos: %q", p.String())
	}
	if (Pos{}).IsValid() {
		t.Error("zero pos should be invalid")
	}
	if !p.IsValid() {
		t.Error("p should be valid")
	}
}
