// Package ctoken defines lexical tokens for the C subset analyzed by
// deviant, together with source positions and a scanner.
//
// Tokens carry a FromMacro flag. The paper (Section 6) modifies the C
// preprocessor to annotate macro-produced code so that belief propagation
// can be truncated at macro boundaries; our preprocessor sets this flag on
// every token that results from a macro expansion.
package ctoken

import "fmt"

// Kind classifies a token.
type Kind int

// Token kinds. Keywords occupy a contiguous range so IsKeyword is a range
// test.
const (
	EOF Kind = iota
	Ident
	IntLit
	FloatLit
	CharLit
	StringLit

	// Punctuation and operators.
	LParen   // (
	RParen   // )
	LBrace   // {
	RBrace   // }
	LBracket // [
	RBracket // ]
	Semi     // ;
	Comma    // ,
	Colon    // :
	Question // ?
	Ellipsis // ...

	Assign       // =
	AddAssign    // +=
	SubAssign    // -=
	MulAssign    // *=
	DivAssign    // /=
	ModAssign    // %=
	AndAssign    // &=
	OrAssign     // |=
	XorAssign    // ^=
	ShlAssign    // <<=
	ShrAssign    // >>=
	Inc          // ++
	Dec          // --
	Plus         // +
	Minus        // -
	Star         // *
	Slash        // /
	Percent      // %
	Amp          // &
	Pipe         // |
	Caret        // ^
	Tilde        // ~
	Not          // !
	Shl          // <<
	Shr          // >>
	Lt           // <
	Gt           // >
	Le           // <=
	Ge           // >=
	EqEq         // ==
	NotEq        // !=
	AndAnd       // &&
	OrOr         // ||
	Arrow        // ->
	Dot          // .
	Hash         // # (only visible pre-cpp)
	HashHash     // ## (only visible pre-cpp)
	Newline      // significant only inside the preprocessor
	keywordFirst // marker

	KwAuto
	KwBreak
	KwCase
	KwChar
	KwConst
	KwContinue
	KwDefault
	KwDo
	KwDouble
	KwElse
	KwEnum
	KwExtern
	KwFloat
	KwFor
	KwGoto
	KwIf
	KwInline
	KwInt
	KwLong
	KwRegister
	KwReturn
	KwShort
	KwSigned
	KwSizeof
	KwStatic
	KwStruct
	KwSwitch
	KwTypedef
	KwUnion
	KwUnsigned
	KwVoid
	KwVolatile
	KwWhile

	keywordLast // marker
)

var kindNames = map[Kind]string{
	EOF:       "EOF",
	Ident:     "identifier",
	IntLit:    "integer literal",
	FloatLit:  "float literal",
	CharLit:   "char literal",
	StringLit: "string literal",
	LParen:    "(",
	RParen:    ")",
	LBrace:    "{",
	RBrace:    "}",
	LBracket:  "[",
	RBracket:  "]",
	Semi:      ";",
	Comma:     ",",
	Colon:     ":",
	Question:  "?",
	Ellipsis:  "...",
	Assign:    "=",
	AddAssign: "+=",
	SubAssign: "-=",
	MulAssign: "*=",
	DivAssign: "/=",
	ModAssign: "%=",
	AndAssign: "&=",
	OrAssign:  "|=",
	XorAssign: "^=",
	ShlAssign: "<<=",
	ShrAssign: ">>=",
	Inc:       "++",
	Dec:       "--",
	Plus:      "+",
	Minus:     "-",
	Star:      "*",
	Slash:     "/",
	Percent:   "%",
	Amp:       "&",
	Pipe:      "|",
	Caret:     "^",
	Tilde:     "~",
	Not:       "!",
	Shl:       "<<",
	Shr:       ">>",
	Lt:        "<",
	Gt:        ">",
	Le:        "<=",
	Ge:        ">=",
	EqEq:      "==",
	NotEq:     "!=",
	AndAnd:    "&&",
	OrOr:      "||",
	Arrow:     "->",
	Dot:       ".",
	Hash:      "#",
	HashHash:  "##",
	Newline:   "newline",

	KwAuto:     "auto",
	KwBreak:    "break",
	KwCase:     "case",
	KwChar:     "char",
	KwConst:    "const",
	KwContinue: "continue",
	KwDefault:  "default",
	KwDo:       "do",
	KwDouble:   "double",
	KwElse:     "else",
	KwEnum:     "enum",
	KwExtern:   "extern",
	KwFloat:    "float",
	KwFor:      "for",
	KwGoto:     "goto",
	KwIf:       "if",
	KwInline:   "inline",
	KwInt:      "int",
	KwLong:     "long",
	KwRegister: "register",
	KwReturn:   "return",
	KwShort:    "short",
	KwSigned:   "signed",
	KwSizeof:   "sizeof",
	KwStatic:   "static",
	KwStruct:   "struct",
	KwSwitch:   "switch",
	KwTypedef:  "typedef",
	KwUnion:    "union",
	KwUnsigned: "unsigned",
	KwVoid:     "void",
	KwVolatile: "volatile",
	KwWhile:    "while",
}

// String returns a printable name for the kind.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// IsKeyword reports whether k is a C keyword.
func (k Kind) IsKeyword() bool { return k > keywordFirst && k < keywordLast }

var keywords = map[string]Kind{}

func init() {
	for k := keywordFirst + 1; k < keywordLast; k++ {
		keywords[kindNames[k]] = k
	}
}

// KeywordKind returns the keyword kind for text, or Ident if text is not a
// keyword.
func KeywordKind(text string) Kind {
	if k, ok := keywords[text]; ok {
		return k
	}
	return Ident
}

// Pos is a source position.
type Pos struct {
	File string
	Line int
	Col  int
}

// String renders the position as file:line:col.
func (p Pos) String() string {
	if p.File == "" {
		return fmt.Sprintf("%d:%d", p.Line, p.Col)
	}
	return fmt.Sprintf("%s:%d:%d", p.File, p.Line, p.Col)
}

// IsValid reports whether the position has been set.
func (p Pos) IsValid() bool { return p.Line > 0 }

// Token is one lexical token.
//
// Tokens deliberately carry no intern.Sym: token streams outlive runs
// (the snapshot store persists them to disk and shares them across runs
// in daemon mode) while Syms are per-run values, so a Sym here would go
// stale. Interning instead canonicalizes Text — one shared string per
// spelling — which makes Text comparisons pointer-fast and keeps retained
// streams from pinning source buffers; per-run Syms are minted where they
// are used, in the belief engine's slot keys.
type Token struct {
	Kind Kind
	Text string // raw text for identifiers and literals
	Pos  Pos
	// FromMacro marks tokens produced by macro expansion. Checkers use it
	// to truncate belief propagation across macro boundaries (paper §6).
	FromMacro bool
	// NoExpand marks identifier tokens that must not be macro-expanded
	// again (used internally by the preprocessor to prevent recursion).
	NoExpand bool
}

// String renders the token for diagnostics.
func (t Token) String() string {
	switch t.Kind {
	case Ident, IntLit, FloatLit, CharLit, StringLit:
		return fmt.Sprintf("%s(%q)", t.Kind, t.Text)
	default:
		return t.Kind.String()
	}
}
