package stats

import (
	"math"
	"testing"
)

// Degenerate z inputs must never leak NaN (the report layer reserves NaN
// to mean "MUST belief, no statistic") and must never leak ±Inf except
// the documented -Inf for an empty population.
func TestZEdgeCases(t *testing.T) {
	cases := []struct {
		name    string
		n, e    int
		p0      float64
		negInf  bool // expect exactly -Inf
		sign    int  // expected sign of a finite result; 0 = don't care
		finite  bool // expect a finite value
		equalTo *float64
	}{
		{name: "n=0", n: 0, e: 0, p0: 0.9, negInf: true},
		{name: "n=0 with stray examples", n: 0, e: 5, p0: 0.9, negInf: true},
		{name: "n negative", n: -3, e: 1, p0: 0.9, negInf: true},
		{name: "e>n clamps to perfect evidence", n: 10, e: 15, p0: 0.9, finite: true, sign: +1},
		{name: "e negative clamps to zero", n: 10, e: -2, p0: 0.9, finite: true, sign: -1},
		{name: "p0=0 does not divide by zero", n: 10, e: 5, p0: 0, finite: true, sign: +1},
		{name: "p0=1 does not divide by zero", n: 10, e: 5, p0: 1, finite: true, sign: -1},
		{name: "p0 perfect match", n: 10, e: 9, p0: 0.9, finite: true, sign: 0},
		{name: "all examples", n: 100, e: 100, p0: 0.9, finite: true, sign: +1},
		{name: "no examples", n: 100, e: 0, p0: 0.9, finite: true, sign: -1},
		{name: "n=1 single check", n: 1, e: 1, p0: 0.9, finite: true, sign: +1},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			z := Z(c.n, c.e, c.p0)
			if math.IsNaN(z) {
				t.Fatalf("Z(%d,%d,%g) = NaN", c.n, c.e, c.p0)
			}
			if c.negInf {
				if !math.IsInf(z, -1) {
					t.Fatalf("Z(%d,%d,%g) = %g, want -Inf", c.n, c.e, c.p0, z)
				}
				return
			}
			if c.finite && math.IsInf(z, 0) {
				t.Fatalf("Z(%d,%d,%g) = %g, want finite", c.n, c.e, c.p0, z)
			}
			if c.sign > 0 && z <= 0 {
				t.Fatalf("Z(%d,%d,%g) = %g, want > 0", c.n, c.e, c.p0, z)
			}
			if c.sign < 0 && z >= 0 {
				t.Fatalf("Z(%d,%d,%g) = %g, want < 0", c.n, c.e, c.p0, z)
			}
		})
	}
}

// Clamping must agree with the clean-input formula at the boundary: e=n
// and e>n rank identically, e=0 and e<0 rank identically.
func TestZClampBoundaries(t *testing.T) {
	if a, b := Z(10, 10, 0.9), Z(10, 99, 0.9); a != b {
		t.Fatalf("Z(10,10)=%g but Z(10,99)=%g; over-clamp should pin to e=n", a, b)
	}
	if a, b := Z(10, 0, 0.9), Z(10, -7, 0.9); a != b {
		t.Fatalf("Z(10,0)=%g but Z(10,-7)=%g; under-clamp should pin to e=0", a, b)
	}
}

// The inverse principle must survive every degenerate input Z survives:
// z(n, n-e) with e > n feeds a negative example count straight into Z.
func TestZInverseEdgeCases(t *testing.T) {
	cases := []struct {
		name string
		n, e int
		p0   float64
	}{
		{name: "n=0", n: 0, e: 0, p0: 0.9},
		{name: "e>n yields negative inverse examples", n: 10, e: 15, p0: 0.9},
		{name: "e=n yields zero inverse examples", n: 10, e: 10, p0: 0.9},
		{name: "p0=1", n: 10, e: 3, p0: 1},
		{name: "p0=0", n: 10, e: 3, p0: 0},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			z := ZInverse(c.n, c.e, c.p0)
			if math.IsNaN(z) {
				t.Fatalf("ZInverse(%d,%d,%g) = NaN", c.n, c.e, c.p0)
			}
			if math.IsInf(z, 0) && c.n > 0 {
				t.Fatalf("ZInverse(%d,%d,%g) = %g, want finite for n>0", c.n, c.e, c.p0, z)
			}
		})
	}
	// The identity the name promises: inverting twice is the original.
	if a, b := ZInverse(20, 6, 0.8), Z(20, 14, 0.8); a != b {
		t.Fatalf("ZInverse(20,6) = %g, want Z(20,14) = %g", a, b)
	}
}

// Counter.Z must route through the same hardened path: a counter with
// more errors than checks (possible only through corruption or a checker
// bug) still ranks finitely.
func TestCounterZDegenerate(t *testing.T) {
	c := Counter{Checks: 5, Errors: 9} // Examples() = -4
	z := c.Z(DefaultP0)
	if math.IsNaN(z) || math.IsInf(z, 0) {
		t.Fatalf("corrupt counter %+v ranked %g, want finite", c, z)
	}
	empty := Counter{}
	if z := empty.Z(DefaultP0); !math.IsInf(z, -1) {
		t.Fatalf("empty counter ranked %g, want -Inf", z)
	}
}
