package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestZBasics(t *testing.T) {
	// Perfect fit above p0 is positive, ratio below p0 negative.
	if Z(100, 100, DefaultP0) <= 0 {
		t.Error("100/100 should rank positive")
	}
	if Z(100, 50, DefaultP0) >= 0 {
		t.Error("50/100 should rank negative at p0=0.9")
	}
	if !math.IsInf(Z(0, 0, DefaultP0), -1) {
		t.Error("empty population ranks -Inf")
	}
}

func TestZFavorsEvidence(t *testing.T) {
	// Paper: "This statistic favors samples with more evidence, and a
	// higher ratio of examples to counter-examples."
	// 999/1000 must outrank 9/10 (same 90%+ ratio shape, more evidence).
	if Z(1000, 999, DefaultP0) <= Z(10, 9, DefaultP0) {
		t.Errorf("z(1000,999)=%v should exceed z(10,9)=%v",
			Z(1000, 999, DefaultP0), Z(10, 9, DefaultP0))
	}
	// And a higher ratio at fixed n outranks a lower one.
	if Z(100, 99, DefaultP0) <= Z(100, 95, DefaultP0) {
		t.Error("higher example ratio should rank higher")
	}
}

func TestZExactValue(t *testing.T) {
	// Hand-computed: n=100, e=95, p0=0.9 -> (0.95-0.9)/sqrt(0.09/100)
	want := 0.05 / math.Sqrt(0.0009)
	got := Z(100, 95, 0.9)
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("got %v want %v", got, want)
	}
}

func TestZInverse(t *testing.T) {
	// The inverse principle: z(n, n-e).
	if ZInverse(100, 5, DefaultP0) != Z(100, 95, DefaultP0) {
		t.Error("inverse mismatch")
	}
}

// Property: z is monotonically increasing in e for fixed n.
func TestZMonotoneInExamples(t *testing.T) {
	f := func(nRaw, eRaw uint8) bool {
		n := int(nRaw%100) + 2
		e := int(eRaw) % n
		return Z(n, e, DefaultP0) < Z(n, e+1, DefaultP0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCounter(t *testing.T) {
	c := Counter{Checks: 4, Errors: 1}
	if c.Examples() != 3 {
		t.Errorf("examples: %d", c.Examples())
	}
	if c.String() != "3/4" {
		t.Errorf("string: %q", c.String())
	}
}

func TestPopulationCheckAndRank(t *testing.T) {
	p := NewPopulation()
	// Figure 1's counts: (a,l): 4 checks, 1 error; (b,l): 3 checks, 2 errors.
	for i := 0; i < 4; i++ {
		p.Check("a@l", i == 3)
	}
	p.Check("b@l", false)
	p.Check("b@l", true)
	p.Check("b@l", true)

	if got := p.Get("a@l"); got.Checks != 4 || got.Errors != 1 {
		t.Errorf("a@l: %+v", got)
	}
	if p.Len() != 2 {
		t.Errorf("len: %d", p.Len())
	}
	ranked := p.RankedInstances(DefaultP0, nil)
	if ranked[0].Key != "a@l" {
		t.Errorf("a@l should outrank b@l: %+v", ranked)
	}
}

func TestRankedBoost(t *testing.T) {
	p := NewPopulation()
	for i := 0; i < 10; i++ {
		p.Check("foo:bar", i == 9)
		p.Check("my_lock:my_unlock", i == 9)
	}
	boost := func(key string) float64 {
		if key == "my_lock:my_unlock" {
			return 1.0
		}
		return 0
	}
	ranked := p.RankedInstances(DefaultP0, boost)
	if ranked[0].Key != "my_lock:my_unlock" {
		t.Errorf("latent boost should promote lock pair: %+v", ranked)
	}
}

func TestRankedDeterministicTies(t *testing.T) {
	p := NewPopulation()
	p.Check("b", false)
	p.Check("a", false)
	r := p.RankedInstances(DefaultP0, nil)
	if r[0].Key != "a" || r[1].Key != "b" {
		t.Errorf("ties should sort by key: %+v", r)
	}
}

func TestKeysSorted(t *testing.T) {
	p := NewPopulation()
	p.Check("z", false)
	p.Check("a", false)
	p.Check("m", false)
	keys := p.Keys()
	if len(keys) != 3 || keys[0] != "a" || keys[2] != "z" {
		t.Errorf("keys: %v", keys)
	}
}

func TestInspectionCurve(t *testing.T) {
	// bugs at ranks 1,2,4 (0-indexed 0,1,3)
	truth := []bool{true, true, false, true, false}
	curve := InspectionCurve(len(truth), func(i int) bool { return truth[i] })
	if len(curve) != 5 {
		t.Fatalf("curve length: %d", len(curve))
	}
	last := curve[4]
	if last.Hits != 3 || last.FalsePositives != 2 {
		t.Errorf("final point: %+v", last)
	}
	if curve[1].Hits != 2 || curve[1].FalsePositives != 0 {
		t.Errorf("point 2: %+v", curve[1])
	}
}

func TestStopAtNoise(t *testing.T) {
	truth := []bool{true, true, true, false, true, false, false, false}
	curve := InspectionCurve(len(truth), func(i int) bool { return truth[i] })
	// At most 25% FPs: prefix of 4 has 1/4 = 25% ok; prefix of 5 has 1/5
	// = 20% ok; 6 has 2/6 = 33% too high; 7,8 worse.
	if got := StopAtNoise(curve, 0.25); got != 5 {
		t.Errorf("stop: %d", got)
	}
	if got := StopAtNoise(curve, 0.0); got != 3 {
		t.Errorf("strict stop: %d", got)
	}
}

// Property: inspection curve totals always sum to rank.
func TestInspectionCurveSums(t *testing.T) {
	f := func(bits []bool) bool {
		curve := InspectionCurve(len(bits), func(i int) bool { return bits[i] })
		for _, pt := range curve {
			if pt.Hits+pt.FalsePositives != pt.Rank {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: RankedInstances is ordered by non-increasing z and contains
// every observed key exactly once, with Errors <= Checks.
func TestRankedInstancesInvariants(t *testing.T) {
	f := func(events []bool) bool {
		p := NewPopulation()
		keys := []string{"a", "b", "c", "d"}
		for i, e := range events {
			p.Check(keys[i%len(keys)], e)
		}
		ranked := p.RankedInstances(DefaultP0, nil)
		if len(ranked) != p.Len() {
			return false
		}
		seen := map[string]bool{}
		prev := 0.0
		for i, r := range ranked {
			if seen[r.Key] || r.Errors > r.Checks || r.Checks <= 0 {
				return false
			}
			seen[r.Key] = true
			if i > 0 && r.ZVal > prev {
				return false
			}
			prev = r.ZVal
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
