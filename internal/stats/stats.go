// Package stats implements the statistical ranking machinery of Section 5:
// the z statistic for proportions, per-slot-instance check/error counters,
// and error ranking.
//
// The crucial design point, taken directly from the paper (§5.1), is that
// z ranks *error messages*, not beliefs: a threshold on belief scores is
// either too low (drowning in false positives) or too high (missing
// everything), whereas inspecting errors in decreasing z order lets the
// user stop when the noise gets too high.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// DefaultP0 is the expected example probability used by the paper
// ("we typically assume a random distribution with probability p0=0.9").
const DefaultP0 = 0.9

// Z computes the z test statistic for proportions:
//
//	z(n, e) = (e/n - p0) / sqrt(p0*(1-p0)/n)
//
// where n is the population size (number of checks) and e the number of
// examples (successful checks). Larger z means the observed ratio of
// examples to counter-examples is more standard errors above p0, i.e. the
// belief is more credible.
//
// Degenerate inputs are made finite rather than propagated: n <= 0
// returns -Inf (no evidence ranks below any evidence, and the value never
// escapes into report JSON because a zero population produces no report);
// e is clamped into [0, n] so corrupted counters cannot produce a ratio
// outside [0, 1]; and p0 is clamped into the open interval (0, 1) so the
// standard error is never zero — p0 of exactly 0 or 1 would otherwise
// divide by zero and leak NaN/Inf into the ranking.
func Z(n, e int, p0 float64) float64 {
	if n <= 0 {
		return math.Inf(-1)
	}
	if e < 0 {
		e = 0
	} else if e > n {
		e = n
	}
	const eps = 1e-9
	if p0 < eps {
		p0 = eps
	} else if p0 > 1-eps {
		p0 = 1 - eps
	}
	return (float64(e)/float64(n) - p0) / math.Sqrt(p0*(1-p0)/float64(n))
}

// ZInverse ranks the negated template T-not (the paper's "inverse
// principle"): if z(n, e) ranks instances satisfying T, z(n, n-e) ranks
// instances satisfying the negation.
func ZInverse(n, e int, p0 float64) float64 { return Z(n, n-e, p0) }

// Counter accumulates evidence for one slot-instance combination of a MAY
// belief: how often the implied rule was checked and how often it failed.
type Counter struct {
	Checks int // population n: times the rule could be tested
	Errors int // counter-examples c: times the test failed
}

// Examples returns the number of successful checks (n - c).
func (c Counter) Examples() int { return c.Checks - c.Errors }

// Z returns the ranking statistic for the counter under p0.
func (c Counter) Z(p0 float64) float64 { return Z(c.Checks, c.Examples(), p0) }

// String renders the counter as "e/n".
func (c Counter) String() string { return fmt.Sprintf("%d/%d", c.Examples(), c.Checks) }

// Population tracks counters for a universe of slot instances, keyed by a
// caller-chosen string (e.g. "spin_lock:spin_unlock" or "var@lock").
//
// Counters are stored by value: Check is the hottest statistical path in
// the pipeline (one call per candidate pair per statement), and a value
// map costs zero allocations per check versus one *Counter box per
// distinct key.
type Population struct {
	counters map[string]Counter
}

// NewPopulation returns an empty population.
func NewPopulation() *Population {
	return &Population{counters: make(map[string]Counter)}
}

// Check records one successful-or-failed test of key's rule: every call
// increments Checks, and err additionally increments Errors.
func (p *Population) Check(key string, err bool) {
	c := p.counters[key]
	c.Checks++
	if err {
		c.Errors++
	}
	p.counters[key] = c
}

// Merge folds another population's evidence into p. Counters are sums,
// so the merged result is independent of merge order — the property the
// parallel pipeline relies on when it shards counting across workers.
func (p *Population) Merge(o *Population) {
	for k, oc := range o.counters {
		c := p.counters[k]
		c.Checks += oc.Checks
		c.Errors += oc.Errors
		p.counters[k] = c
	}
}

// Get returns the counter for key (zero value if never checked).
func (p *Population) Get(key string) Counter {
	return p.counters[key]
}

// Len returns the number of distinct slot instances observed.
func (p *Population) Len() int { return len(p.counters) }

// Keys returns all keys, sorted.
func (p *Population) Keys() []string {
	keys := make([]string, 0, len(p.counters))
	for k := range p.counters {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Ranked is one slot instance with its counter and z value.
type Ranked struct {
	Key string
	Counter
	ZVal float64
}

// RankedInstances returns all instances ordered by decreasing z (ties
// broken by key for determinism). Boost, if non-nil, adds a bonus to the
// sort score of selected keys — the latent-specification trick of
// prioritizing pairs whose names contain "lock", "release", etc. (§5.1).
func (p *Population) RankedInstances(p0 float64, boost func(key string) float64) []Ranked {
	out := make([]Ranked, 0, len(p.counters))
	for k, c := range p.counters {
		out = append(out, Ranked{Key: k, Counter: c, ZVal: c.Z(p0)})
	}
	score := func(r Ranked) float64 {
		s := r.ZVal
		if boost != nil {
			s += boost(r.Key)
		}
		return s
	}
	sort.Slice(out, func(i, j int) bool {
		si, sj := score(out[i]), score(out[j])
		if si != sj {
			return si > sj
		}
		return out[i].Key < out[j].Key
	})
	return out
}

// InspectionPoint is one step of a simulated inspection of a ranked error
// list: after examining the i-th message (1-based), Hits errors were real
// and FalsePositives were not.
type InspectionPoint struct {
	Rank           int
	Hits           int
	FalsePositives int
}

// InspectionCurve simulates the paper's inspection methodology: walk a
// ranked list of error messages top-down, tallying true bugs versus false
// positives at every rank. isBug reports ground truth for the i-th ranked
// message.
func InspectionCurve(n int, isBug func(i int) bool) []InspectionPoint {
	out := make([]InspectionPoint, 0, n)
	hits, fps := 0, 0
	for i := 0; i < n; i++ {
		if isBug(i) {
			hits++
		} else {
			fps++
		}
		out = append(out, InspectionPoint{Rank: i + 1, Hits: hits, FalsePositives: fps})
	}
	return out
}

// StopAtNoise returns the largest rank k such that the cumulative false
// positive rate within the first k messages stays at or below maxFPRate,
// mimicking "we stop when the false positive rate is too high". It scans
// from the top and returns the last acceptable prefix length.
func StopAtNoise(curve []InspectionPoint, maxFPRate float64) int {
	best := 0
	for _, pt := range curve {
		rate := float64(pt.FalsePositives) / float64(pt.Rank)
		if rate <= maxFPRate {
			best = pt.Rank
		}
	}
	return best
}
