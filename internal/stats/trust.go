package stats

import "math"

// TrustModel implements the §5 ranking augmentation: "One useful addition
// is code trustworthiness: code with few errors is more reliable for
// examples of correct practice than code with many." Combined with §6.1's
// observation that redundancy and contradiction correlate with general
// confusion, the model tracks definite (MUST-belief) errors per file and
// exposes two signals:
//
//   - Weight: how much to trust the file's code as *evidence* of correct
//     practice (1.0 for clean files, decaying with error count);
//   - SuspicionBoost: a small rank bonus for statistical violations
//     sitting in files that already contain definite errors (bugs
//     cluster around confusion).
type TrustModel struct {
	errs map[string]int
}

// NewTrustModel returns a model with no observations.
func NewTrustModel() *TrustModel {
	return &TrustModel{errs: make(map[string]int)}
}

// Observe records one definite error in file.
func (t *TrustModel) Observe(file string) { t.errs[file]++ }

// Errors returns the number of definite errors observed in file.
func (t *TrustModel) Errors(file string) int { return t.errs[file] }

// Weight returns the trust weight of file in (0, 1]: 1/(1+errors).
func (t *TrustModel) Weight(file string) float64 {
	return 1.0 / (1.0 + float64(t.errs[file]))
}

// SuspicionBoost returns a rank bonus, in z units, for error messages
// located in file: ln(1+errors) scaled gently so trust reorders only
// near-ties and never overrides strong statistical evidence.
func (t *TrustModel) SuspicionBoost(file string) float64 {
	return 0.25 * math.Log1p(float64(t.errs[file]))
}
