package latent

import "testing"

func TestCrashRoutines(t *testing.T) {
	c := Default()
	for _, name := range []string{"panic", "BUG", "do_exit", "dev_panic", "fatal_error"} {
		if !c.IsCrashRoutine(name) {
			t.Errorf("%s should be a crash routine", name)
		}
	}
	for _, name := range []string{"printk", "kmalloc", "spin_lock"} {
		if c.IsCrashRoutine(name) {
			t.Errorf("%s should not be a crash routine", name)
		}
	}
}

func TestLockClassification(t *testing.T) {
	c := Default()
	acquires := []string{"spin_lock", "lock_kernel", "down_interruptible", "mutex_acquire"}
	for _, n := range acquires {
		if !c.IsLockAcquire(n) {
			t.Errorf("%s should be an acquire", n)
		}
	}
	releases := []string{"spin_unlock", "unlock_kernel", "up", "mutex_release"}
	for _, n := range releases {
		if !c.IsLockRelease(n) {
			t.Errorf("%s should be a release", n)
		}
		if c.IsLockAcquire(n) {
			t.Errorf("%s must not be classified as an acquire", n)
		}
	}
	if c.IsLockAcquire("printk") || c.IsLockRelease("printk") {
		t.Error("printk is neither")
	}
}

func TestAllocFree(t *testing.T) {
	c := Default()
	if !c.LooksAlloc("kmalloc") || !c.LooksAlloc("create_bounce") || !c.LooksAlloc("skb_clone") {
		t.Error("alloc substrings")
	}
	if !c.LooksFree("kfree") || !c.LooksFree("brelse") || !c.LooksFree("release_region") {
		t.Error("free substrings")
	}
	if c.LooksAlloc("printk") || c.LooksFree("printk") {
		t.Error("printk is neither")
	}
}

func TestPairBoost(t *testing.T) {
	c := Default()
	if c.PairBoost("spin_lock", "spin_unlock") <= 0 {
		t.Error("lock/unlock should get a boost")
	}
	if c.PairBoost("cli", "restore_flags") <= 0 {
		t.Error("cli/restore_flags should get a boost")
	}
	if c.PairBoost("request_region", "release_region") <= 0 {
		t.Error("request/release should get a boost")
	}
	if c.PairBoost("printk", "sprintf") != 0 {
		t.Error("unrelated names get no boost")
	}
	if c.PairBoost("spin_unlock", "spin_lock") != 0 {
		t.Error("reversed pair gets no boost")
	}
}

func TestUserPointerArg(t *testing.T) {
	c := Default()
	if idx, ok := c.UserPointerArg("copy_from_user"); !ok || idx != 1 {
		t.Errorf("copy_from_user: %d %v", idx, ok)
	}
	if idx, ok := c.UserPointerArg("copyout"); !ok || idx != 1 {
		t.Errorf("copyout: %d %v", idx, ok)
	}
	if _, ok := c.UserPointerArg("memcpy"); ok {
		t.Error("memcpy is not a user-copy routine")
	}
}
