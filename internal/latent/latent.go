// Package latent encodes the paper's "latent specifications" (§5.2):
// naming conventions, crash-routine annotations, and error-return idioms
// that systems code uses to communicate intent. Checkers consult these to
// decide what to check and to suppress or prioritize results.
package latent

import "strings"

// Conventions bundles the latent-specification knowledge used by the
// checkers. The zero value is unusable; construct with Default.
type Conventions struct {
	// PairSubstrings maps "opening" substrings to their closing
	// counterparts; a candidate (a, b) pair whose names contain such a
	// combination is prioritized in pair derivation.
	PairSubstrings map[string][]string
	// CrashRoutines never return; paths following a call are pruned.
	CrashRoutines map[string]bool
	// AllocSubstrings suggest a routine returns fresh storage that may
	// be null on failure.
	AllocSubstrings []string
	// FreeSubstrings suggest a routine releases storage.
	FreeSubstrings []string
	// UserCopyRoutines take a user pointer at the given argument index;
	// passing p marks p as a dangerous user pointer (§7).
	UserCopyRoutines map[string]int
	// LockSubstrings / UnlockSubstrings identify lock acquire/release
	// calls whose first argument is the lock.
	LockSubstrings   []string
	UnlockSubstrings []string
	// IntrDisable / IntrEnable identify interrupt-state manipulation
	// (cli/sti-style, no argument).
	IntrDisable map[string]bool
	IntrEnable  map[string]bool
	// ErrPtrCheck is the IS_ERR-style predicate name (§8.3).
	ErrPtrCheck string
}

// Default returns the conventions tuned for Linux/BSD-flavoured code,
// mirroring the substrings the paper lists: "lock, unlock, alloc, free,
// release, assert, fatal, panic, spl, sys, intr, brelse, ioctl".
func Default() *Conventions {
	return &Conventions{
		PairSubstrings: map[string][]string{
			"lock":    {"unlock"},
			"acquire": {"release"},
			"enter":   {"exit", "leave"},
			"open":    {"close"},
			"get":     {"put", "release"},
			"alloc":   {"free", "release", "brelse"},
			"disable": {"enable", "restore"},
			"cli":     {"sti", "restore_flags"},
			"down":    {"up"},
			"start":   {"stop", "end", "finish"},
			"begin":   {"end"},
			"request": {"release", "free"},
		},
		CrashRoutines: map[string]bool{
			"panic": true, "BUG": true, "oops": true, "do_exit": true,
			"exit": true, "abort": true, "die": true, "machine_halt": true,
			"assert_fail": true, "__assert_fail": true, "out_of_line_bug": true,
		},
		AllocSubstrings: []string{"alloc", "create", "dup", "new", "getblk", "clone"},
		FreeSubstrings:  []string{"free", "release", "destroy", "put", "brelse", "kfree"},
		UserCopyRoutines: map[string]int{
			"copy_from_user": 1, "copy_to_user": 0,
			"copyin": 0, "copyout": 1,
			"get_user": 1, "put_user": 1,
			"memcpy_fromfs": 1, "memcpy_tofs": 0,
			"verify_area": 1,
		},
		LockSubstrings:   []string{"lock", "acquire", "down"},
		UnlockSubstrings: []string{"unlock", "release", "up"},
		IntrDisable: map[string]bool{
			"cli": true, "local_irq_disable": true, "disable_irq": true,
			"splhigh": true, "splbio": true, "splnet": true,
		},
		IntrEnable: map[string]bool{
			"sti": true, "local_irq_enable": true, "enable_irq": true,
			"restore_flags": true, "splx": true, "spl0": true,
		},
		ErrPtrCheck: "IS_ERR",
	}
}

// nameMatches reports whether name matches the convention substring sub.
// Short substrings ("up", "get") only match as whole '_'-separated tokens
// so "down_interruptible" does not match "up"; longer substrings match
// anywhere.
func nameMatches(name, sub string) bool {
	lower := strings.ToLower(name)
	if len(sub) >= 4 {
		return strings.Contains(lower, sub)
	}
	return hasToken(lower, sub)
}

// hasToken reports whether s contains sub as a whole '_'-separated
// token, without allocating the split (this runs for every call event
// of every path the engine walks).
func hasToken(s, sub string) bool {
	for {
		i := strings.IndexByte(s, '_')
		if i < 0 {
			return s == sub
		}
		if s[:i] == sub {
			return true
		}
		s = s[i+1:]
	}
}

// IsCrashRoutine reports whether name is a never-returns routine, either
// by exact table match or by the "fatal"/"panic"/"assert" substrings the
// paper calls out.
func (c *Conventions) IsCrashRoutine(name string) bool {
	if c.CrashRoutines[name] {
		return true
	}
	lower := strings.ToLower(name)
	for _, sub := range []string{"panic", "fatal"} {
		if strings.Contains(lower, sub) {
			return true
		}
	}
	return false
}

// IsLockAcquire reports whether name looks like a lock acquisition.
// Release substrings are checked first so "spin_unlock" is not classified
// as an acquire by its "lock" substring.
func (c *Conventions) IsLockAcquire(name string) bool {
	if c.IsLockRelease(name) {
		return false
	}
	for _, sub := range c.LockSubstrings {
		if nameMatches(name, sub) {
			return true
		}
	}
	return false
}

// IsLockRelease reports whether name looks like a lock release.
func (c *Conventions) IsLockRelease(name string) bool {
	for _, sub := range c.UnlockSubstrings {
		if nameMatches(name, sub) {
			return true
		}
	}
	return false
}

// LooksAlloc reports whether name suggests an allocator.
func (c *Conventions) LooksAlloc(name string) bool {
	for _, sub := range c.AllocSubstrings {
		if nameMatches(name, sub) {
			return true
		}
	}
	return false
}

// LooksFree reports whether name suggests a deallocator.
func (c *Conventions) LooksFree(name string) bool {
	for _, sub := range c.FreeSubstrings {
		if nameMatches(name, sub) {
			return true
		}
	}
	return false
}

// PairBoost returns a ranking bonus for a candidate (a, b) pairing whose
// names match a known open/close naming convention ("use these latent
// specifications to cull out the most easily understood results", §5.1).
func (c *Conventions) PairBoost(a, b string) float64 {
	for open, closes := range c.PairSubstrings {
		if !nameMatches(a, open) {
			continue
		}
		for _, cl := range closes {
			if nameMatches(b, cl) {
				return 2.0
			}
		}
	}
	return 0
}

// UserPointerArg returns the argument index of name's user-pointer
// parameter and true if name is a user-copy routine.
func (c *Conventions) UserPointerArg(name string) (int, bool) {
	idx, ok := c.UserCopyRoutines[name]
	return idx, ok
}
