// Package deviant finds bugs in systems code without a priori knowledge
// of the system's correctness rules, reproducing Engler, Chen, Hallem,
// Chou and Chelf, "Bugs as Deviant Behavior: A General Approach to
// Inferring Errors in Systems Code" (SOSP 2001).
//
// The library extracts programmer beliefs from C source code and
// cross-checks them. MUST beliefs (a dereference implies the pointer is
// non-null; passing a pointer to copy_from_user implies it is a dangerous
// user pointer) are checked for contradictions — any conflict is an
// error, with no need to know which belief is correct. MAY beliefs (a
// call to a followed by b implies they may be paired; a variable usually
// accessed under a lock may be protected by it) are assumed true,
// checked, and the resulting errors ranked by the z statistic for
// proportions so that strong beliefs' violations surface first.
//
// Quick start:
//
//	res, err := deviant.Analyze(map[string]string{
//	    "drv.c": src,
//	}, deviant.DefaultOptions())
//	for _, r := range res.Reports.Ranked() {
//	    fmt.Println(r.String())
//	}
//
// The checkers are the six from the paper: internal null consistency
// (check-then-use, use-then-check, redundant checks), user-pointer
// security, IS_ERR result checking, "can this routine fail" derivation,
// lock/variable binding derivation, and temporal pair derivation, plus
// the interrupt-discipline checker. All substrates — C preprocessor,
// parser, CFG construction, the path-sensitive memoizing engine, and the
// statistical machinery — are implemented in this module with no external
// dependencies.
package deviant

import (
	"deviant/internal/checkers/version"
	"deviant/internal/core"
	"deviant/internal/cpp"
	"deviant/internal/latent"
	"deviant/internal/obs"
	"deviant/internal/report"
	"deviant/internal/stats"
)

// Options configures an analysis run. See DefaultOptions.
type Options = core.Options

// Checks selects which of the paper's checkers run.
type Checks = core.Checks

// Result carries the ranked reports plus the derived rule instances
// (pairs, can-fail routines, lock bindings, ...) used by the experiment
// harness.
type Result = core.Result

// Report is one ranked error message.
type Report = report.Report

// Conventions are the latent specifications (§5.2) the checkers consult:
// naming substrings, crash routines, user-copy routines.
type Conventions = latent.Conventions

// FileProvider supplies file contents for #include resolution.
type FileProvider = cpp.FileProvider

// MapFS is an in-memory FileProvider keyed by path.
type MapFS = cpp.MapFS

// Tracer records spans for every pipeline stage when attached via
// Options.Tracer; export the result with WriteChromeTrace (loadable in
// Perfetto / chrome://tracing). A nil tracer disables tracing with no
// measurable overhead.
type Tracer = obs.Tracer

// Span is one traced region recorded on a Tracer.
type Span = obs.Span

// A constructs a span attribute.
func A(key, value string) obs.Attr { return obs.A(key, value) }

// Registry is a metrics registry (counters, gauges, fixed-bucket
// histograms) rendered in Prometheus text format; populate it from a run
// with Result.RecordMetrics.
type Registry = obs.Registry

// NewTracer returns a tracer whose clock starts now.
func NewTracer() *Tracer { return obs.NewTracer() }

// NewRegistry returns an empty metrics registry.
func NewRegistry() *Registry { return obs.NewRegistry() }

// DefaultOptions returns the paper-faithful configuration: all checkers
// on, p0 = 0.9, crash-path pruning and engine memoization enabled.
func DefaultOptions() Options { return core.DefaultOptions() }

// AllChecks enables every checker.
func AllChecks() Checks { return core.AllChecks() }

// ParseChecks parses a comma-separated checker subset ("null,fail").
func ParseChecks(s string) (Checks, error) { return core.ParseChecks(s) }

// DefaultConventions returns Linux/BSD-flavoured latent specifications.
func DefaultConventions() *Conventions { return latent.Default() }

// Analyze runs the configured checkers over in-memory sources: map keys
// ending in ".c" are translation units; all other entries are reachable
// via #include (searched in Options.IncludeDirs).
func Analyze(sources map[string]string, opts Options) (*Result, error) {
	return core.New(opts, nil).AnalyzeSources(sources)
}

// AnalyzeWithConventions is Analyze with custom latent specifications.
func AnalyzeWithConventions(sources map[string]string, opts Options, conv *Conventions) (*Result, error) {
	return core.New(opts, conv).AnalyzeSources(sources)
}

// AnalyzeFS runs the checkers over the named translation units from fs.
func AnalyzeFS(fs FileProvider, units []string, opts Options) (*Result, error) {
	return core.New(opts, nil).AnalyzeFS(fs, units)
}

// Drift is one cross-version contradiction found by Diff.
type Drift = version.Drift

// Diff cross-checks a new version of a code base against an old one
// (§4.2: relating a routine to itself through time). The old version's
// code implies invariants — parameters guarded against null, user-pointer
// disciplines, callee-result checks, error-return conventions — and every
// contradiction in the new version is returned and reported.
func Diff(oldSources, newSources map[string]string, opts Options) ([]Drift, *Result, error) {
	drifts, _, newRes, err := DiffResults(oldSources, newSources, opts)
	return drifts, newRes, err
}

// DiffResults is Diff exposing both versions' results, so callers can
// compare the runs by fingerprint (new/fixed findings) as well as by
// cross-version drift.
func DiffResults(oldSources, newSources map[string]string, opts Options) ([]Drift, *Result, *Result, error) {
	oldRes, err := core.New(opts, nil).AnalyzeSources(oldSources)
	if err != nil {
		return nil, nil, nil, err
	}
	newRes, err := core.New(opts, nil).AnalyzeSources(newSources)
	if err != nil {
		return nil, nil, nil, err
	}
	drifts := version.Diff(oldRes.Prog, newRes.Prog, latent.Default(), newRes.Reports)
	// Drift reports joined the collector after analysis stamped
	// fingerprints; re-stamp so they get identities too.
	newRes.Reports.SetFingerprints(newRes.Fingerprints)
	return drifts, oldRes, newRes, nil
}

// Z computes the paper's ranking statistic z(n, e) with probability p0
// (§5): the number of standard errors the observed example ratio e/n sits
// above p0.
func Z(n, e int, p0 float64) float64 { return stats.Z(n, e, p0) }

// DefaultP0 is the expected example probability the paper assumes (0.9).
const DefaultP0 = stats.DefaultP0
