// deviantfuzz soaks the full analysis pipeline against generated
// adversarial C programs and eight differential oracles: worker-count
// determinism, memoization soundness, snapshot warm/cold equivalence,
// metamorphic invariance under alpha-renaming and function reordering,
// quarantine determinism under armed failpoints (identical fault
// containment across worker counts and memo on/off, clean bytes once
// disarmed), fleet determinism (1/2/3-worker coordinator runs must
// reproduce the single-process bytes, absorb one dead worker, and
// degrade deterministically when every worker is dead), fingerprint
// stability (report identities byte-identical across workers, memo,
// fleet shapes and the metamorphic transforms), and no-crash/no-hang.
//
// Usage:
//
//	deviantfuzz [-n units] [-seed first] [-timeout per-unit] [-save dir] [-v]
//
// Every trial is a pure function of its seed, so any reported violation
// reproduces with `deviantfuzz -seed N -n 1`. Failing inputs are archived
// under -save (default testdata/fuzz/deviantfuzz) and the repro command
// is printed. Exit status 1 when any oracle was violated, 0 otherwise.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"deviant/internal/fuzzgen"
)

func main() {
	var (
		n       = flag.Int("n", 200, "number of generated units (seeds) to soak")
		seed    = flag.Int64("seed", 1, "first seed; trials run seed..seed+n-1")
		timeout = flag.Duration("timeout", 30*time.Second, "per-analysis deadline before a run counts as hung")
		saveDir = flag.String("save", filepath.Join("testdata", "fuzz", "deviantfuzz"), "directory for archived failing inputs")
		verbose = flag.Bool("v", false, "print a line per seed")
	)
	flag.Parse()

	start := time.Now()
	var trials, mutated, vacuous, analyses, reports int
	failedSeeds := make([]int64, 0)
	for s := *seed; s < *seed+int64(*n); s++ {
		sources, vs, st := fuzzgen.CheckSeed(s, *timeout)
		trials++
		analyses += st.Analyses
		reports += st.Reports
		if st.Mutated {
			mutated++
		}
		if st.MemoVacuous {
			vacuous++
		}
		if *verbose {
			fmt.Printf("seed %d: mutated=%v analyses=%d reports=%d violations=%d\n",
				s, st.Mutated, st.Analyses, st.Reports, len(vs))
		}
		if len(vs) == 0 {
			continue
		}
		failedSeeds = append(failedSeeds, s)
		for _, v := range vs {
			fmt.Fprintf(os.Stderr, "seed %d: VIOLATION %s\n", s, v)
		}
		if path, err := archive(*saveDir, s, sources); err != nil {
			fmt.Fprintf(os.Stderr, "seed %d: archive failed: %v\n", s, err)
		} else {
			fmt.Fprintf(os.Stderr, "seed %d: input saved to %s\n", s, path)
		}
		fmt.Fprintf(os.Stderr, "seed %d: reproduce with: go run ./cmd/deviantfuzz -seed %d -n 1\n", s, s)
	}

	fmt.Printf("deviantfuzz: %d units (%d mutated), %d analyses, %d baseline reports, %d memo-vacuous, %d failing seeds in %v\n",
		trials, mutated, analyses, reports, vacuous, len(failedSeeds), time.Since(start).Round(time.Millisecond))
	if len(failedSeeds) > 0 {
		fmt.Fprintf(os.Stderr, "failing seeds: %v\n", failedSeeds)
		os.Exit(1)
	}
}

// archive writes the failing trial's sources to one file per seed, each
// source delimited by a header line, so the exact bytes that broke an
// oracle are preserved even if the generator changes later.
func archive(dir string, seed int64, sources map[string]string) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, fmt.Sprintf("seed-%d.txt", seed))
	f, err := os.Create(path)
	if err != nil {
		return "", err
	}
	defer f.Close()
	names := make([]string, 0, len(sources))
	for name := range sources {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if _, err := fmt.Fprintf(f, "==== %s ====\n%s\n", name, sources[name]); err != nil {
			return "", err
		}
	}
	return path, nil
}
