// Command corpusgen writes a synthetic kernel-flavoured C tree to disk,
// with a ground-truth manifest of the seeded bugs. The generated trees
// substitute for the Linux 2.4.1/2.4.7 and OpenBSD 2.8 snapshots the
// paper evaluates on (see DESIGN.md §2).
//
// Usage:
//
//	corpusgen -out <dir> [-spec linux247] [-seed N] [-modules N]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"deviant/internal/corpus"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("corpusgen: ")

	out := flag.String("out", "", "output directory (required)")
	specName := flag.String("spec", "linux247", "corpus spec: linux241, linux247, openbsd28")
	seed := flag.Int64("seed", 0, "override the spec's seed")
	modules := flag.Int("modules", 0, "override the spec's module count")
	flag.Parse()

	if *out == "" {
		fmt.Fprintln(os.Stderr, "usage: corpusgen -out <dir> [flags]")
		flag.PrintDefaults()
		os.Exit(2)
	}

	var spec corpus.Spec
	switch *specName {
	case "linux241":
		spec = corpus.Linux241()
	case "linux247":
		spec = corpus.Linux247()
	case "openbsd28":
		spec = corpus.OpenBSD28()
	default:
		log.Fatalf("unknown spec %q", *specName)
	}
	if *seed != 0 {
		spec.Seed = *seed
	}
	if *modules != 0 {
		spec.Modules = *modules
	}

	c := corpus.Generate(spec)
	manifest, err := c.WriteToDir(*out)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s: %d files, %d lines, %d seeded bugs (%s)\n",
		*out, len(c.Files), c.Lines, len(c.Bugs), manifest)
}
