// Command deviant runs the belief-inference checkers over a C source
// tree and prints ranked error reports.
//
// Usage:
//
//	deviant [flags] <dir>
//
// The directory is searched recursively for .c translation units;
// #include resolves against the unit's directory plus every -I dir
// (default: <dir>/include).
//
// Flags:
//
//	-top N        print only the N highest-ranked reports (0 = all)
//	-checkers s   comma-separated subset: null,free,userptr,iserr,fail,
//	              lockvar,pairing,intr,seccheck,reverse,retconv,redundant
//	              (default: all)
//	-rules        also print the derived rule instances
//	-p0 f         expected example probability for the z statistic
//	-no-memo      disable engine memoization (slower; for comparison)
//	-no-prune     keep panic/BUG paths (more false positives)
//	-j N          run the pipeline on N worker goroutines (0 = all CPUs,
//	              1 = serial; output is identical for every N)
//	-stats        print per-stage wall-clock timing and a per-checker
//	              table (duration, reports, block visits) after the reports
//	-trace FILE   write a Chrome trace-event JSON of the run to FILE;
//	              load it in Perfetto (ui.perfetto.dev) or chrome://tracing
//	-json         one JSON object per line on stdout: first a summary
//	              (units, functions, lines, parse_errors), then reports
//	-trust        §5 trustworthiness-augmented ranking
//	-timeout d    wall-clock budget for the whole run (0 = none); an
//	              overrun run still prints what it finished, notes the
//	              partial results on stderr, and exits 4
//	-diff OLDDIR  cross-version mode (§4.2): check that <dir> preserves
//	              the invariants OLDDIR's code implied; prints the drift
//	              list and then the new version's ranked reports
//	-only-changed with -diff: compare the two runs by fingerprint and
//	              emit only new findings (in the new version but not the
//	              old) and fixed ones (gone from the new version)
//	-baseline m   "write" records every finding's fingerprint to the
//	              baseline file after the run; "use" suppresses every
//	              baselined finding from the output (known findings
//	              stop interrupting — only deviations from the baseline
//	              surface)
//	-baseline-file f  baseline path (default "deviant.baseline")
//	-compact      one small JSON object per finding ({"f","c","p","m",
//	              ...}), fingerprint first — the byte-thrifty stream for
//	              agent consumers
//	-journal FILE write a JSONL run journal to FILE: run_start,
//	              per-record quarantine, rank, and run_end events under
//	              the fixed run id "local" (DESIGN.md §13 schema — the
//	              same event vocabulary deviantd journals per request)
//
// Exit codes: 0 on a clean run (reports may still be printed — deviant
// finds bugs, it does not gate on them), 1 on a fatal error, 2 on bad
// usage, 3 when the frontend reported parse errors, 4 when -timeout
// expired mid-run, so CI scripts can tell "clean corpus, no bugs" from
// "corpus didn't parse" from "results are partial".
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"io/fs"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"deviant"
	"deviant/internal/core"
	"deviant/internal/cpp"
	"deviant/internal/obs"
	"deviant/internal/report"
)

// exitParseErrors is the exit code for "the corpus did not fully parse":
// distinct from 1 (fatal error) and 2 (usage) so scripts can gate on
// frontend health.
const exitParseErrors = 3

// exitDeadline is the exit code for "-timeout expired mid-run": the
// printed results cover only the work that finished in budget.
const exitDeadline = 4

func main() {
	log.SetFlags(0)
	log.SetPrefix("deviant: ")

	top := flag.Int("top", 0, "print only the N highest-ranked reports (0 = all)")
	checkers := flag.String("checkers", "", "comma-separated checker subset (default all)")
	rules := flag.Bool("rules", false, "print derived rule instances")
	p0 := flag.Float64("p0", deviant.DefaultP0, "expected example probability for z")
	noMemo := flag.Bool("no-memo", false, "disable engine memoization")
	noPrune := flag.Bool("no-prune", false, "disable crash-path pruning")
	workers := flag.Int("j", 0, "pipeline worker goroutines (0 = all CPUs, 1 = serial)")
	stats := flag.Bool("stats", false, "print per-stage timing and a per-checker table")
	tracePath := flag.String("trace", "", "write a Chrome trace of the run to this file")
	jsonOut := flag.Bool("json", false, "emit a summary line and reports as JSON lines")
	trust := flag.Bool("trust", false, "rank with the §5 code-trustworthiness augmentation")
	diffOld := flag.String("diff", "", "cross-version mode: directory of the OLD version; the positional dir is the new one")
	onlyChanged := flag.Bool("only-changed", false, "with -diff: emit only new and fixed findings, keyed by fingerprint")
	baselineMode := flag.String("baseline", "", `baseline mode: "write" records finding fingerprints, "use" suppresses baselined findings`)
	baselineFile := flag.String("baseline-file", "deviant.baseline", "baseline file for -baseline write|use")
	compact := flag.Bool("compact", false, "emit compact JSONL findings (one small object per report)")
	timeout := flag.Duration("timeout", 0, "wall-clock budget for the run (0 = none); exit 4 with partial results on overrun")
	journalPath := flag.String("journal", "", "write a JSONL run journal (run start, quarantine, rank, run end) to this file")
	flag.Parse()

	usage := func(msg string) {
		fmt.Fprintln(os.Stderr, "deviant: "+msg)
		fmt.Fprintln(os.Stderr, "usage: deviant [flags] <dir>")
		flag.PrintDefaults()
		os.Exit(2)
	}
	if flag.NArg() != 1 {
		usage("exactly one directory argument required")
	}
	if *baselineMode != "" && *baselineMode != "write" && *baselineMode != "use" {
		usage(`-baseline must be "write" or "use"`)
	}
	if *baselineMode != "" && *diffOld != "" {
		usage("-baseline does not combine with -diff (use -only-changed to see what changed)")
	}
	if *onlyChanged && *diffOld == "" {
		usage("-only-changed requires -diff")
	}
	if *compact && *diffOld != "" {
		usage("-compact does not combine with -diff")
	}
	if *compact && *jsonOut {
		usage("-compact and -json are alternative output modes; pick one")
	}
	dir := flag.Arg(0)

	opts := deviant.DefaultOptions()
	opts.P0 = *p0
	opts.Memoize = !*noMemo
	opts.DisableCrashPruning = *noPrune
	opts.Workers = *workers
	if *checkers != "" {
		opts.Checks = parseCheckers(*checkers)
	}
	if *timeout > 0 {
		opts.Deadline = time.Now().Add(*timeout)
	}
	var tr *deviant.Tracer
	if *tracePath != "" {
		tr = deviant.NewTracer()
		opts.Tracer = tr
	}
	// A CLI run's journal uses the fixed run id "local" (there is no
	// request id to adopt), which keeps journal bytes reproducible for
	// a given corpus modulo timestamps.
	var journal *obs.Journal
	var journalFile *os.File
	if *journalPath != "" {
		f, err := os.Create(*journalPath)
		if err != nil {
			log.Fatalf("journal: %v", err)
		}
		journalFile = f
		journal = obs.NewJournal(f, "local")
		opts.Journal = journal
	}
	closeJournal := func() {
		if journalFile == nil {
			return
		}
		if err := journal.Err(); err != nil {
			fmt.Fprintf(os.Stderr, "deviant: journal: %v\n", err)
		}
		if err := journalFile.Close(); err != nil {
			log.Fatalf("journal: %v", err)
		}
	}

	if *diffOld != "" {
		journal.Event("run_start", obs.A("mode", "diff"))
		parseErrs, deadlineHit, err := runDiff(os.Stdout, *diffOld, dir, opts, *top, *jsonOut, *trust, *onlyChanged)
		if err != nil {
			log.Fatal(err)
		}
		writeTrace(*tracePath, tr)
		exit := 0
		switch {
		case deadlineHit:
			exit = exitDeadline
		case parseErrs > 0:
			exit = exitParseErrors
		}
		journal.Event("run_end", obs.A("exit", fmt.Sprint(exit)))
		closeJournal()
		if deadlineHit {
			fmt.Fprintln(os.Stderr, "deviant: -timeout expired; results are partial")
			os.Exit(exitDeadline)
		}
		if parseErrs > 0 {
			os.Exit(exitParseErrors)
		}
		return
	}

	units, err := findUnits(dir)
	if err != nil {
		log.Fatal(err)
	}
	if len(units) == 0 {
		log.Fatalf("no .c files under %s", dir)
	}
	journal.Event("run_start", obs.A("mode", "cli"), obs.A("units", fmt.Sprint(len(units))))

	res, err := deviant.AnalyzeFS(cpp.DirFS(dir), units, opts)
	if err != nil {
		log.Fatal(err)
	}
	if !*jsonOut && !*compact {
		fmt.Printf("%d translation units, %d functions, %d lines\n",
			len(units), res.FuncCount, res.LineCount)
	}
	for _, e := range res.ParseErrors {
		fmt.Fprintf(os.Stderr, "frontend: %v\n", e)
	}

	if *rules {
		printRules(res)
	}

	rankSpan := tr.Start("rank")
	ranked := res.Reports.Ranked()
	if *trust {
		ranked = res.Reports.RankedWithTrust(res.Reports.TrustFromMustErrors())
	}
	rankSpan.End()

	// Baseline handling runs between ranking and presentation: "use"
	// subtracts the known-finding set before anything is printed;
	// "write" records the full ranked set and still prints it, so one
	// run can both adopt a baseline and show what it covers.
	suppressed := 0
	if *baselineMode == "use" {
		bl := readBaselineFile(*baselineFile)
		kept, supp := report.Partition(ranked, bl)
		ranked, suppressed = kept, len(supp)
		journal.Event("baseline",
			obs.A("file", *baselineFile),
			obs.A("suppressed", fmt.Sprint(suppressed)))
	}
	if *baselineMode == "write" {
		writeBaselineFile(*baselineFile, ranked)
	}

	journal.Event("rank",
		obs.A("reports", fmt.Sprint(len(ranked))),
		obs.A("functions", fmt.Sprint(res.FuncCount)),
		obs.A("parse_errors", fmt.Sprint(len(res.ParseErrors))))
	if *compact {
		if err := emitCompact(os.Stdout, ranked, *top); err != nil {
			log.Fatal(err)
		}
	} else if *jsonOut {
		emitJSON(res, len(units), ranked, suppressed, *top)
	} else {
		if suppressed > 0 {
			fmt.Printf("%d reports (%d suppressed by baseline %s)\n", len(ranked), suppressed, *baselineFile)
		} else {
			fmt.Printf("%d reports\n", len(ranked))
		}
		for i, r := range ranked {
			if *top > 0 && i >= *top {
				fmt.Printf("... %d more (rerun with -top 0)\n", len(ranked)-i)
				break
			}
			fmt.Printf("%4d. %s\n", i+1, r.String())
		}
		printQuarantine(os.Stdout, res)
	}
	if *stats {
		// Keep stdout pure JSON lines in -json mode.
		w := os.Stdout
		if *jsonOut {
			w = os.Stderr
		}
		fmt.Fprint(w, res.Timing.String())
		printCheckerStats(w, res)
		if res.Degraded {
			fmt.Fprintf(w, "fault containment: %d quarantined, %d panics recovered\n",
				len(res.Quarantined), res.PanicsRecovered)
		}
	}
	writeTrace(*tracePath, tr)
	exit := 0
	switch {
	case res.DeadlineExceeded:
		exit = exitDeadline
	case len(res.ParseErrors) > 0:
		exit = exitParseErrors
	}
	journal.Event("run_end", obs.A("exit", fmt.Sprint(exit)))
	closeJournal()
	if res.DeadlineExceeded {
		fmt.Fprintln(os.Stderr, "deviant: -timeout expired; results are partial")
		os.Exit(exitDeadline)
	}
	if len(res.ParseErrors) > 0 {
		os.Exit(exitParseErrors)
	}
}

// printQuarantine renders the degraded-run section of text output: the
// canonical quarantine records, one per line, already sorted by core so
// the section is byte-identical across worker counts.
func printQuarantine(w io.Writer, res *deviant.Result) {
	if !res.Degraded {
		return
	}
	fmt.Fprintf(w, "degraded run: %d quarantined (%d panics recovered)\n",
		len(res.Quarantined), res.PanicsRecovered)
	for _, q := range res.Quarantined {
		fmt.Fprintf(w, "   q. %s\n", q.String())
	}
}

// printCheckerStats renders the per-checker table -stats promises. The
// numbers come from the same metrics registry deviantd scrapes on
// /metrics: the run is folded into a fresh registry and the table reads
// the counter handles back, so CLI stats and daemon metrics cannot drift.
func printCheckerStats(w io.Writer, res *deviant.Result) {
	reg := deviant.NewRegistry()
	res.RecordMetrics(reg)
	names := make([]string, 0, len(res.Timing.Checkers))
	for name := range res.Timing.Checkers {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Fprintf(w, "per-checker:\n")
	fmt.Fprintf(w, "  %-10s %10s %8s %10s %10s\n", "checker", "seconds", "reports", "visits", "memo-hits")
	for _, name := range names {
		l := obs.L("checker", name)
		fmt.Fprintf(w, "  %-10s %10.4f %8.0f %10.0f %10.0f\n", name,
			reg.Counter(core.MetricCheckerSeconds, "", l).Value(),
			reg.Counter(core.MetricCheckerReports, "", l).Value(),
			reg.Counter(core.MetricCheckerVisits, "", l).Value(),
			reg.Counter(core.MetricCheckerMemoHits, "", l).Value())
	}
}

// writeTrace dumps the tracer's spans as Chrome trace-event JSON. A nil
// tracer (no -trace flag) is a no-op.
func writeTrace(path string, tr *deviant.Tracer) {
	if tr == nil {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		log.Fatalf("trace: %v", err)
	}
	if err := tr.WriteChromeTrace(f); err != nil {
		f.Close()
		log.Fatalf("trace: %v", err)
	}
	if err := f.Close(); err != nil {
		log.Fatalf("trace: %v", err)
	}
	fmt.Fprintf(os.Stderr, "trace: wrote %d spans to %s\n", len(tr.Spans()), path)
}

// jsonSummary is the first line of -json output: corpus size and
// frontend health, so scripts can detect parse trouble without scraping
// stderr. The degraded fields are omitted on clean runs, keeping those
// bytes identical to builds that predate fault containment.
type jsonSummary struct {
	Units       int  `json:"units"`
	Functions   int  `json:"functions"`
	Lines       int  `json:"lines"`
	ParseErrors int  `json:"parse_errors"`
	Reports     int  `json:"reports"`
	Degraded    bool `json:"degraded,omitempty"`
	Quarantined int  `json:"quarantined,omitempty"`
	// Suppressed counts baselined findings removed by -baseline use;
	// omitted when no baseline applied, keeping pre-baseline bytes.
	Suppressed int `json:"suppressed,omitempty"`
}

func emitJSON(res *deviant.Result, units int, ranked []deviant.Report, suppressed, top int) {
	if err := emitJSONTo(os.Stdout, res, units, ranked, suppressed, top); err != nil {
		log.Fatal(err)
	}
}

func emitJSONTo(w io.Writer, res *deviant.Result, units int, ranked []deviant.Report, suppressed, top int) error {
	enc := json.NewEncoder(w)
	if err := enc.Encode(jsonSummary{
		Units:       units,
		Functions:   res.FuncCount,
		Lines:       res.LineCount,
		ParseErrors: len(res.ParseErrors),
		Reports:     len(ranked),
		Degraded:    res.Degraded,
		Quarantined: len(res.Quarantined),
		Suppressed:  suppressed,
	}); err != nil {
		return err
	}
	for i, r := range ranked {
		if top > 0 && i >= top {
			break
		}
		if err := enc.Encode(report.ToJSON(i+1, &r)); err != nil {
			return err
		}
	}
	// Quarantine records follow the reports: {"unit","stage","cause"}
	// lines in canonical order, present only on degraded runs.
	for _, q := range res.Quarantined {
		if err := enc.Encode(q); err != nil {
			return err
		}
	}
	return nil
}

// emitCompact renders the compact JSONL stream: one small object per
// ranked finding, fingerprint first, nothing else on stdout.
func emitCompact(w io.Writer, ranked []deviant.Report, top int) error {
	enc := json.NewEncoder(w)
	for i := range ranked {
		if top > 0 && i >= top {
			break
		}
		if err := enc.Encode(report.ToCompact(&ranked[i])); err != nil {
			return err
		}
	}
	return nil
}

// readBaselineFile loads the -baseline-file, fatally on any error: a
// missing or corrupt baseline silently suppressing nothing (or
// everything) would defeat the point of having one.
func readBaselineFile(path string) *report.Baseline {
	f, err := os.Open(path)
	if err != nil {
		log.Fatalf("baseline: %v", err)
	}
	defer f.Close()
	bl, err := report.ReadBaseline(f)
	if err != nil {
		log.Fatalf("baseline: %v", err)
	}
	return bl
}

// writeBaselineFile records every ranked finding's fingerprint. The
// note goes to stderr so every stdout mode stays machine-clean.
func writeBaselineFile(path string, ranked []deviant.Report) {
	bl := report.NewBaseline(ranked)
	f, err := os.Create(path)
	if err != nil {
		log.Fatalf("baseline: %v", err)
	}
	if err := bl.Write(f); err != nil {
		f.Close()
		log.Fatalf("baseline: %v", err)
	}
	if err := f.Close(); err != nil {
		log.Fatalf("baseline: %v", err)
	}
	fmt.Fprintf(os.Stderr, "deviant: baseline: wrote %d fingerprints to %s\n", bl.Len(), path)
}

func parseCheckers(s string) deviant.Checks {
	c, err := deviant.ParseChecks(s)
	if err != nil {
		log.Fatal(err)
	}
	return c
}

func printRules(res *deviant.Result) {
	fmt.Println("derived rule instances:")
	for i, p := range res.Pairs {
		if i >= 5 {
			break
		}
		fmt.Printf("  pair:     %s -> %s (%d/%d, z=%.2f)\n", p.A, p.B, p.Examples(), p.Checks, p.Z)
	}
	for i, d := range res.CanFail {
		if i >= 5 {
			break
		}
		fmt.Printf("  can-fail: %s (%d/%d, z=%.2f)\n", d.Func, d.Examples(), d.Checks, d.Z)
	}
	for i, b := range res.LockBindings {
		if i >= 5 {
			break
		}
		fmt.Printf("  lock:     %s protects %s (%d/%d, z=%.2f)\n", b.Lock, b.Var, b.Examples(), b.Checks, b.Z)
	}
}

// findUnits lists .c files under dir, relative, sorted.
func findUnits(dir string) ([]string, error) {
	var units []string
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && strings.HasSuffix(path, ".c") {
			rel, relErr := filepath.Rel(dir, path)
			if relErr != nil {
				return relErr
			}
			units = append(units, rel)
		}
		return nil
	})
	sort.Strings(units)
	return units, err
}

// readTree loads every file under dir into memory for Diff.
func readTree(dir string) (map[string]string, error) {
	srcs := map[string]string{}
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		rel, relErr := filepath.Rel(dir, path)
		if relErr != nil {
			return relErr
		}
		if strings.HasSuffix(rel, ".c") || strings.HasSuffix(rel, ".h") {
			b, readErr := os.ReadFile(path)
			if readErr != nil {
				return readErr
			}
			srcs[rel] = string(b)
		}
		return nil
	})
	return srcs, err
}

// jsonDrift is the wire shape of one cross-version invariant violation.
type jsonDrift struct {
	Kind string `json:"kind"`
	Func string `json:"func"`
	Pos  string `json:"pos"`
	Msg  string `json:"msg"`
}

// runDiff cross-checks newDir against oldDir (§4.2: the same routines
// through time): it prints the invariant violations, then the new
// version's ranked reports — which include the drift reports — so the
// analysis flags (-p0, -checkers, -no-memo, -no-prune, -j) and the
// presentation flags (-top, -json, -trust) all apply exactly as in
// single-version mode. It returns the new version's frontend parse-error
// count for exit-code purposes, plus whether the -timeout deadline
// expired during either version's analysis.
func runDiff(w io.Writer, oldDir, newDir string, opts deviant.Options, top int, jsonOut, trust, onlyChanged bool) (int, bool, error) {
	oldSrcs, err := readTree(oldDir)
	if err != nil {
		return 0, false, err
	}
	newSrcs, err := readTree(newDir)
	if err != nil {
		return 0, false, err
	}
	drifts, oldRes, newRes, err := deviant.DiffResults(oldSrcs, newSrcs, opts)
	if err != nil {
		return 0, false, err
	}
	units := 0
	for name := range newSrcs {
		if strings.HasSuffix(name, ".c") {
			units++
		}
	}
	rankSpan := opts.Tracer.Start("rank")
	ranked := newRes.Reports.Ranked()
	if trust {
		ranked = newRes.Reports.RankedWithTrust(newRes.Reports.TrustFromMustErrors())
	}
	rankSpan.End()
	if onlyChanged {
		err := emitChanged(w, oldRes.Reports.Ranked(), ranked, oldDir, top, jsonOut)
		return len(newRes.ParseErrors), newRes.DeadlineExceeded || oldRes.DeadlineExceeded, err
	}
	if jsonOut {
		if err := emitJSONTo(w, newRes, units, ranked, 0, top); err != nil {
			return 0, false, err
		}
		enc := json.NewEncoder(w)
		for _, d := range drifts {
			if err := enc.Encode(jsonDrift{Kind: d.Kind, Func: d.Func, Pos: d.Pos.String(), Msg: d.Msg}); err != nil {
				return 0, false, err
			}
		}
		return len(newRes.ParseErrors), newRes.DeadlineExceeded, nil
	}
	fmt.Fprintf(w, "%d invariant violations (old: %s, new: %s)\n", len(drifts), oldDir, newDir)
	for i, d := range drifts {
		fmt.Fprintf(w, "%3d. [%s] %s at %s: %s\n", i+1, d.Kind, d.Func, d.Pos, d.Msg)
	}
	fmt.Fprintf(w, "%d reports in new version\n", len(ranked))
	for i, r := range ranked {
		if top > 0 && i >= top {
			fmt.Fprintf(w, "... %d more (rerun with -top 0)\n", len(ranked)-i)
			break
		}
		fmt.Fprintf(w, "%4d. %s\n", i+1, r.String())
	}
	printQuarantine(w, newRes)
	return len(newRes.ParseErrors), newRes.DeadlineExceeded, nil
}

// jsonChanged is the wire shape of one changed finding in -only-changed
// mode: its status ("new" or "fixed") followed by the full report.
type jsonChanged struct {
	Status string `json:"status"`
	report.JSONReport
}

// emitChanged renders the fingerprint-keyed cross-run comparison: only
// findings whose identities appear in exactly one of the two runs. New
// findings rank in new-run order, fixed ones in old-run order; -top
// bounds each list independently.
func emitChanged(w io.Writer, oldRanked, newRanked []deviant.Report, oldDir string, top int, jsonOut bool) error {
	newOnly, fixed := report.DiffByFingerprint(oldRanked, newRanked)
	clip := func(rs []deviant.Report) []deviant.Report {
		if top > 0 && len(rs) > top {
			return rs[:top]
		}
		return rs
	}
	if jsonOut {
		enc := json.NewEncoder(w)
		if err := enc.Encode(struct {
			New   int `json:"new"`
			Fixed int `json:"fixed"`
		}{len(newOnly), len(fixed)}); err != nil {
			return err
		}
		for i, r := range clip(newOnly) {
			if err := enc.Encode(jsonChanged{"new", report.ToJSON(i+1, &r)}); err != nil {
				return err
			}
		}
		for i, r := range clip(fixed) {
			if err := enc.Encode(jsonChanged{"fixed", report.ToJSON(i+1, &r)}); err != nil {
				return err
			}
		}
		return nil
	}
	fmt.Fprintf(w, "%d new, %d fixed since %s\n", len(newOnly), len(fixed), oldDir)
	for i, r := range clip(newOnly) {
		fmt.Fprintf(w, "new %4d. %s\n", i+1, r.String())
	}
	for i, r := range clip(fixed) {
		fmt.Fprintf(w, "fixed %4d. %s\n", i+1, r.String())
	}
	return nil
}
