// Command deviant runs the belief-inference checkers over a C source
// tree and prints ranked error reports.
//
// Usage:
//
//	deviant [flags] <dir>
//
// The directory is searched recursively for .c translation units;
// #include resolves against the unit's directory plus every -I dir
// (default: <dir>/include).
//
// Flags:
//
//	-top N        print only the N highest-ranked reports (0 = all)
//	-checkers s   comma-separated subset: null,free,userptr,iserr,fail,
//	              lockvar,pairing,intr,seccheck,reverse,retconv,redundant
//	              (default: all)
//	-rules        also print the derived rule instances
//	-p0 f         expected example probability for the z statistic
//	-no-memo      disable engine memoization (slower; for comparison)
//	-no-prune     keep panic/BUG paths (more false positives)
//	-j N          run the pipeline on N worker goroutines (0 = all CPUs,
//	              1 = serial; output is identical for every N)
//	-stats        print per-stage wall-clock timing after the reports
//	-json         one JSON object per line on stdout: first a summary
//	              (units, functions, lines, parse_errors), then reports
//	-trust        §5 trustworthiness-augmented ranking
//	-diff OLDDIR  cross-version mode (§4.2): check that <dir> preserves
//	              the invariants OLDDIR's code implied
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io/fs"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"deviant"
	"deviant/internal/cpp"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("deviant: ")

	top := flag.Int("top", 0, "print only the N highest-ranked reports (0 = all)")
	checkers := flag.String("checkers", "", "comma-separated checker subset (default all)")
	rules := flag.Bool("rules", false, "print derived rule instances")
	p0 := flag.Float64("p0", deviant.DefaultP0, "expected example probability for z")
	noMemo := flag.Bool("no-memo", false, "disable engine memoization")
	noPrune := flag.Bool("no-prune", false, "disable crash-path pruning")
	workers := flag.Int("j", 0, "pipeline worker goroutines (0 = all CPUs, 1 = serial)")
	stats := flag.Bool("stats", false, "print per-stage wall-clock timing")
	jsonOut := flag.Bool("json", false, "emit a summary line and reports as JSON lines")
	trust := flag.Bool("trust", false, "rank with the §5 code-trustworthiness augmentation")
	diffOld := flag.String("diff", "", "cross-version mode: directory of the OLD version; the positional dir is the new one")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: deviant [flags] <dir>")
		flag.PrintDefaults()
		os.Exit(2)
	}
	dir := flag.Arg(0)

	opts := deviant.DefaultOptions()
	opts.P0 = *p0
	opts.Memoize = !*noMemo
	opts.DisableCrashPruning = *noPrune
	opts.Workers = *workers
	if *checkers != "" {
		opts.Checks = parseCheckers(*checkers)
	}

	if *diffOld != "" {
		runDiff(*diffOld, dir, opts)
		return
	}

	units, err := findUnits(dir)
	if err != nil {
		log.Fatal(err)
	}
	if len(units) == 0 {
		log.Fatalf("no .c files under %s", dir)
	}

	res, err := deviant.AnalyzeFS(cpp.DirFS(dir), units, opts)
	if err != nil {
		log.Fatal(err)
	}
	if !*jsonOut {
		fmt.Printf("%d translation units, %d functions, %d lines\n",
			len(units), res.FuncCount, res.LineCount)
	}
	for _, e := range res.ParseErrors {
		fmt.Fprintf(os.Stderr, "frontend: %v\n", e)
	}

	if *rules {
		printRules(res)
	}

	ranked := res.Reports.Ranked()
	if *trust {
		ranked = res.Reports.RankedWithTrust(res.Reports.TrustFromMustErrors())
	}
	if *jsonOut {
		emitJSON(res, len(units), ranked, *top)
	} else {
		fmt.Printf("%d reports\n", len(ranked))
		for i, r := range ranked {
			if *top > 0 && i >= *top {
				fmt.Printf("... %d more (rerun with -top 0)\n", len(ranked)-i)
				break
			}
			fmt.Printf("%4d. %s\n", i+1, r.String())
		}
	}
	if *stats {
		// Keep stdout pure JSON lines in -json mode.
		w := os.Stdout
		if *jsonOut {
			w = os.Stderr
		}
		fmt.Fprint(w, res.Timing.String())
	}
}

// jsonReport is the machine-readable report shape (one JSON object per
// line).
type jsonReport struct {
	Rank     int     `json:"rank"`
	Checker  string  `json:"checker"`
	File     string  `json:"file"`
	Line     int     `json:"line"`
	Col      int     `json:"col"`
	Rule     string  `json:"rule"`
	Message  string  `json:"message"`
	Definite bool    `json:"definite"` // MUST-belief contradiction
	Z        float64 `json:"z,omitempty"`
	Checks   int     `json:"checks,omitempty"`
	Examples int     `json:"examples,omitempty"`
}

// jsonSummary is the first line of -json output: corpus size and
// frontend health, so scripts can detect parse trouble without scraping
// stderr.
type jsonSummary struct {
	Units       int `json:"units"`
	Functions   int `json:"functions"`
	Lines       int `json:"lines"`
	ParseErrors int `json:"parse_errors"`
	Reports     int `json:"reports"`
}

func emitJSON(res *deviant.Result, units int, ranked []deviant.Report, top int) {
	enc := json.NewEncoder(os.Stdout)
	if err := enc.Encode(jsonSummary{
		Units:       units,
		Functions:   res.FuncCount,
		Lines:       res.LineCount,
		ParseErrors: len(res.ParseErrors),
		Reports:     len(ranked),
	}); err != nil {
		log.Fatal(err)
	}
	for i, r := range ranked {
		if top > 0 && i >= top {
			break
		}
		jr := jsonReport{
			Rank: i + 1, Checker: r.Checker,
			File: r.Pos.File, Line: r.Pos.Line, Col: r.Pos.Col,
			Rule: r.Rule, Message: r.Message,
			Definite: !r.Statistical(),
		}
		if r.Statistical() {
			jr.Z = r.Z
			jr.Checks = r.Counter.Checks
			jr.Examples = r.Counter.Examples
		}
		if err := enc.Encode(jr); err != nil {
			log.Fatal(err)
		}
	}
}

func parseCheckers(s string) deviant.Checks {
	var c deviant.Checks
	for _, name := range strings.Split(s, ",") {
		switch strings.TrimSpace(name) {
		case "null":
			c.Null = true
		case "free":
			c.Free = true
		case "userptr":
			c.UserPtr = true
		case "iserr":
			c.IsErr = true
		case "fail":
			c.Fail = true
		case "lockvar":
			c.LockVar = true
		case "pairing":
			c.Pairing = true
		case "intr":
			c.Intr = true
		case "seccheck":
			c.SecCheck = true
		case "reverse":
			c.Reverse = true
		case "retconv":
			c.RetConv = true
		case "redundant":
			c.Redundant = true
		case "":
		default:
			log.Fatalf("unknown checker %q", name)
		}
	}
	return c
}

func printRules(res *deviant.Result) {
	fmt.Println("derived rule instances:")
	for i, p := range res.Pairs {
		if i >= 5 {
			break
		}
		fmt.Printf("  pair:     %s -> %s (%d/%d, z=%.2f)\n", p.A, p.B, p.Examples(), p.Checks, p.Z)
	}
	for i, d := range res.CanFail {
		if i >= 5 {
			break
		}
		fmt.Printf("  can-fail: %s (%d/%d, z=%.2f)\n", d.Func, d.Examples(), d.Checks, d.Z)
	}
	for i, b := range res.LockBindings {
		if i >= 5 {
			break
		}
		fmt.Printf("  lock:     %s protects %s (%d/%d, z=%.2f)\n", b.Lock, b.Var, b.Examples(), b.Checks, b.Z)
	}
}

// findUnits lists .c files under dir, relative, sorted.
func findUnits(dir string) ([]string, error) {
	var units []string
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && strings.HasSuffix(path, ".c") {
			rel, relErr := filepath.Rel(dir, path)
			if relErr != nil {
				return relErr
			}
			units = append(units, rel)
		}
		return nil
	})
	sort.Strings(units)
	return units, err
}

// readTree loads every file under dir into memory for Diff.
func readTree(dir string) (map[string]string, error) {
	srcs := map[string]string{}
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		rel, relErr := filepath.Rel(dir, path)
		if relErr != nil {
			return relErr
		}
		if strings.HasSuffix(rel, ".c") || strings.HasSuffix(rel, ".h") {
			b, readErr := os.ReadFile(path)
			if readErr != nil {
				return readErr
			}
			srcs[rel] = string(b)
		}
		return nil
	})
	return srcs, err
}

// runDiff cross-checks newDir against oldDir (§4.2: the same routines
// through time) and prints the invariant violations. It honors the same
// analysis flags (-p0, -checkers, -no-memo, -no-prune, -j) as the
// single-version mode.
func runDiff(oldDir, newDir string, opts deviant.Options) {
	oldSrcs, err := readTree(oldDir)
	if err != nil {
		log.Fatal(err)
	}
	newSrcs, err := readTree(newDir)
	if err != nil {
		log.Fatal(err)
	}
	drifts, _, err := deviant.Diff(oldSrcs, newSrcs, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d invariant violations (old: %s, new: %s)\n", len(drifts), oldDir, newDir)
	for i, d := range drifts {
		fmt.Printf("%3d. [%s] %s at %s: %s\n", i+1, d.Kind, d.Func, d.Pos, d.Msg)
	}
}
