package main

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	deviant "deviant"
	"deviant/internal/ctoken"
	"deviant/internal/report"
)

// -json output is a line protocol: one summary object first, then one
// object per ranked report, rank-ordered, truncated at -top. The exact
// bytes are a compatibility contract with scripted consumers; regenerate
// with UPDATE_GOLDEN=1 only for intentional schema changes.
func TestEmitJSONGolden(t *testing.T) {
	col := report.NewCollector()
	col.AddMust("null/use-then-check", "do not check q after dereference",
		ctoken.Pos{File: "a.c", Line: 9, Col: 3}, report.Serious, 2,
		"pointer q checked after unconditional dereference")
	col.AddStat("pairing", "cli must be paired with sti",
		ctoken.Pos{File: "b.c", Line: 40, Col: 1}, 2.97, 12, 11,
		"exit path missing sti after cli")
	col.AddStat("failcheck", "result of kmalloc must be checked before use",
		ctoken.Pos{File: "a.c", Line: 21, Col: 7}, 1.14, 6, 5,
		"unchecked kmalloc result dereferenced")
	ranked := col.Ranked()

	res := &deviant.Result{
		FuncCount:   7,
		LineCount:   180,
		ParseErrors: []error{errors.New("c.c:1:1: include \"gone.h\" not found")},
	}

	var all bytes.Buffer
	if err := emitJSONTo(&all, res, 3, ranked, 0, 0); err != nil {
		t.Fatal(err)
	}
	compareGolden(t, filepath.Join("testdata", "json_out.golden"), all.Bytes())

	// -top truncates the report lines but never the summary, and the
	// summary still counts everything.
	var top bytes.Buffer
	if err := emitJSONTo(&top, res, 3, ranked, 0, 1); err != nil {
		t.Fatal(err)
	}
	wantPrefix := all.Bytes()[:len(topLines(all.Bytes(), 2))]
	if !bytes.Equal(top.Bytes(), wantPrefix) {
		t.Fatalf("-top 1 output is not a prefix of the full output:\n got %s\nwant %s", top.Bytes(), wantPrefix)
	}
}

// topLines returns the byte length of the first n lines of b.
func topLines(b []byte, n int) []byte {
	off := 0
	for i := 0; i < n; i++ {
		j := bytes.IndexByte(b[off:], '\n')
		if j < 0 {
			return b
		}
		off += j + 1
	}
	return b[:off]
}

func compareGolden(t *testing.T, path string, got []byte) {
	t.Helper()
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden file %s updated", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden: %v (run with UPDATE_GOLDEN=1 to create)", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("output differs from %s\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}
