package main

import (
	"bufio"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// countStdoutLines runs the built CLI and returns stdout split to lines.
func runCLI(t *testing.T, bin string, args ...string) []string {
	t.Helper()
	out, err := exec.Command(bin, args...).Output()
	if err != nil {
		t.Fatalf("deviant %s: %v\n%s", strings.Join(args, " "), err, out)
	}
	return strings.Split(strings.TrimRight(string(out), "\n"), "\n")
}

// TestBaselineWriteUse drives the adoption workflow end to end through
// the real binary: record a baseline, then re-run with it — every
// finding is known, so nothing surfaces; the summary says how many were
// suppressed; and a fresh finding would still get through (covered by
// the jobs smoke test against a changed corpus).
func TestBaselineWriteUse(t *testing.T) {
	bin := buildCLI(t)
	dir := t.TempDir()
	writeTree(t, dir, map[string]string{"drv.c": newDrv, "include/k.h": diffHeader})
	blFile := filepath.Join(t.TempDir(), "known.baseline")

	// A plain run has findings to baseline.
	base := runCLI(t, bin, "-json", dir)
	var summary struct {
		Reports    int `json:"reports"`
		Suppressed int `json:"suppressed"`
	}
	if err := json.Unmarshal([]byte(base[0]), &summary); err != nil {
		t.Fatal(err)
	}
	if summary.Reports == 0 {
		t.Fatal("corpus produced no reports; baseline test is vacuous")
	}
	total := summary.Reports

	// write: same findings printed, baseline recorded on the side.
	out, err := exec.Command(bin, "-baseline", "write", "-baseline-file", blFile, dir).CombinedOutput()
	if err != nil {
		t.Fatalf("baseline write: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "wrote") || !strings.Contains(string(out), blFile) {
		t.Fatalf("baseline write note missing:\n%s", out)
	}
	data, err := os.ReadFile(blFile)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), `{"format":"deviant-baseline/v1"`) {
		t.Fatalf("baseline file header malformed: %s", bufio.NewScanner(strings.NewReader(string(data))).Text())
	}

	// use: everything is known, so the run is silent about it.
	used := runCLI(t, bin, "-json", "-baseline", "use", "-baseline-file", blFile, dir)
	if err := json.Unmarshal([]byte(used[0]), &summary); err != nil {
		t.Fatal(err)
	}
	if summary.Reports != 0 || summary.Suppressed != total {
		t.Fatalf("baseline use: %d reports, %d suppressed; want 0 and %d", summary.Reports, summary.Suppressed, total)
	}
	for _, line := range used[1:] {
		if strings.Contains(line, `"rank"`) {
			t.Fatalf("suppressed finding leaked into output: %s", line)
		}
	}

	// Text mode says what the baseline did.
	text := runCLI(t, bin, "-baseline", "use", "-baseline-file", blFile, dir)
	joined := strings.Join(text, "\n")
	if !strings.Contains(joined, "0 reports") || !strings.Contains(joined, "suppressed by baseline") {
		t.Fatalf("text mode missing suppression note:\n%s", joined)
	}

	// A missing or corrupt baseline is a hard error, not silence.
	if err := exec.Command(bin, "-baseline", "use", "-baseline-file", filepath.Join(dir, "absent"), dir).Run(); err == nil {
		t.Fatal("missing baseline file did not fail the run")
	}
	corrupt := filepath.Join(t.TempDir(), "corrupt")
	if err := os.WriteFile(corrupt, []byte("not a baseline\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := exec.Command(bin, "-baseline", "use", "-baseline-file", corrupt, dir).Run(); err == nil {
		t.Fatal("corrupt baseline file did not fail the run")
	}
}

// TestCompactOutput pins the -compact stream: one object per finding,
// fingerprint-first key order, nothing else on stdout, same finding
// count as -json.
func TestCompactOutput(t *testing.T) {
	bin := buildCLI(t)
	dir := t.TempDir()
	writeTree(t, dir, map[string]string{"drv.c": newDrv, "include/k.h": diffHeader})

	full := runCLI(t, bin, "-json", dir)
	var summary struct {
		Reports int `json:"reports"`
	}
	if err := json.Unmarshal([]byte(full[0]), &summary); err != nil {
		t.Fatal(err)
	}

	lines := runCLI(t, bin, "-compact", dir)
	if len(lines) != summary.Reports {
		t.Fatalf("compact emitted %d lines, -json counted %d reports", len(lines), summary.Reports)
	}
	for _, line := range lines {
		if !strings.HasPrefix(line, `{"f":"v1:`) {
			t.Fatalf("compact line not fingerprint-first: %s", line)
		}
		var cr struct {
			F string `json:"f"`
			C string `json:"c"`
			P string `json:"p"`
			M string `json:"m"`
		}
		if err := json.Unmarshal([]byte(line), &cr); err != nil {
			t.Fatalf("compact line not JSON: %s: %v", line, err)
		}
		if cr.F == "" || cr.C == "" || cr.P == "" || cr.M == "" {
			t.Fatalf("compact line missing required fields: %s", line)
		}
	}

	// -top bounds the stream.
	if top := runCLI(t, bin, "-compact", "-top", "1", dir); len(top) != 1 {
		t.Fatalf("-compact -top 1 emitted %d lines", len(top))
	}
}

// TestOnlyChangedDiff pins fingerprint-keyed -diff: identical trees
// have no changes; the real old/new pair surfaces the regression as new
// and nothing spurious — position shifts alone must not show up.
func TestOnlyChangedDiff(t *testing.T) {
	bin := buildCLI(t)
	oldDir, newDir := t.TempDir(), t.TempDir()
	writeTree(t, oldDir, map[string]string{"drv.c": oldDrv, "include/k.h": diffHeader})
	writeTree(t, newDir, map[string]string{"drv.c": newDrv, "include/k.h": diffHeader})

	same := runCLI(t, bin, "-diff", oldDir, "-only-changed", oldDir)
	if same[0] != "0 new, 0 fixed since "+oldDir {
		t.Fatalf("identical trees reported changes: %s", same[0])
	}

	changed := runCLI(t, bin, "-diff", oldDir, "-only-changed", "-json", newDir)
	var counts struct {
		New   int `json:"new"`
		Fixed int `json:"fixed"`
	}
	if err := json.Unmarshal([]byte(changed[0]), &counts); err != nil {
		t.Fatal(err)
	}
	if counts.New == 0 {
		t.Fatalf("regression between versions not flagged as new:\n%s", strings.Join(changed, "\n"))
	}
	sawNew := false
	for _, line := range changed[1:] {
		var c struct {
			Status      string `json:"status"`
			Fingerprint string `json:"fingerprint"`
		}
		if err := json.Unmarshal([]byte(line), &c); err != nil {
			t.Fatalf("changed line not JSON: %s: %v", line, err)
		}
		if c.Status != "new" && c.Status != "fixed" {
			t.Fatalf("unexpected status %q in %s", c.Status, line)
		}
		if c.Fingerprint == "" {
			t.Fatalf("changed finding without fingerprint: %s", line)
		}
		sawNew = sawNew || c.Status == "new"
	}
	if !sawNew {
		t.Fatal("no new-status line emitted")
	}
}

// TestFlagValidation pins usage errors (exit 2) for contradictory flag
// combinations.
func TestFlagValidation(t *testing.T) {
	bin := buildCLI(t)
	dir := t.TempDir()
	writeTree(t, dir, map[string]string{"drv.c": oldDrv, "include/k.h": diffHeader})
	bad := [][]string{
		{"-only-changed", dir},
		{"-baseline", "bogus", dir},
		{"-baseline", "use", "-diff", dir, dir},
		{"-compact", "-json", dir},
		{"-compact", "-diff", dir, dir},
	}
	for _, args := range bad {
		err := exec.Command(bin, args...).Run()
		ee, ok := err.(*exec.ExitError)
		if !ok || ee.ExitCode() != 2 {
			t.Errorf("deviant %s: want exit 2, got %v", strings.Join(args, " "), err)
		}
	}
}
