package main

import (
	"bytes"
	"fmt"
	"path/filepath"
	"regexp"
	"testing"

	"deviant"
	"deviant/internal/fault"
	"deviant/internal/obs"
)

// tsField matches the journal's RFC3339-millisecond timestamp field so
// goldens can pin everything else about a line.
var tsField = regexp.MustCompile(`"ts":"[0-9TZ:.\-]+"`)

// TestJournalGolden pins the DESIGN.md §13 journal schema as emitted by
// a CLI run (run id "local"): field order, event names, and attribute
// vocabulary, with a fault-armed unit so a quarantine event appears
// between run_start and rank. Timestamps are masked; everything else is
// a compatibility contract with journal consumers. Regenerate with
// UPDATE_GOLDEN=1 only for intentional schema changes.
func TestJournalGolden(t *testing.T) {
	srcs := map[string]string{"a.c": statsSrc}
	fault.Arm("cfg", "g")
	defer fault.Reset()

	var buf bytes.Buffer
	journal := obs.NewJournal(&buf, "local")
	opts := deviant.DefaultOptions()
	opts.Journal = journal

	// The same event sequence main emits around Analyze.
	journal.Event("run_start", obs.A("mode", "cli"), obs.A("units", "1"))
	res, err := deviant.Analyze(srcs, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Degraded {
		t.Fatal("armed cfg trap did not degrade the run")
	}
	ranked := res.Reports.Ranked()
	journal.Event("rank",
		obs.A("reports", fmt.Sprint(len(ranked))),
		obs.A("functions", fmt.Sprint(res.FuncCount)),
		obs.A("parse_errors", fmt.Sprint(len(res.ParseErrors))))
	journal.Event("run_end", obs.A("exit", "0"))
	if err := journal.Err(); err != nil {
		t.Fatal(err)
	}

	masked := tsField.ReplaceAll(buf.Bytes(), []byte(`"ts":"TS"`))
	compareGolden(t, filepath.Join("testdata", "journal.golden"), masked)
}
