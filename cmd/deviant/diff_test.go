package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

const diffHeader = `
#define NULL 0
struct dev { int count; int *buf; };
void *kmalloc(int n);
void panic(const char *fmt, ...);
void printk(const char *fmt, ...);
`

const oldDrv = `
#include "k.h"
int drv_read(struct dev *d) {
	if (d == NULL)
		return -1;
	return d->count;
}
int mk_a(struct dev *d) { int *b = kmalloc(4); if (!b) return -1; b[0] = 1; return 0; }
int mk_b(struct dev *d) { int *b = kmalloc(4); if (!b) return -1; b[0] = 1; return 0; }
int mk_c(struct dev *d) { int *b = kmalloc(4); if (!b) return -1; b[0] = 1; return 0; }
`

// The new version drops drv_read's null guard (a §4.2 drift), forgets one
// kmalloc check (statistical fail-checker signal, so -p0 matters), and
// adds a panic-guarded deref (so -no-prune matters).
const newDrv = `
#include "k.h"
int drv_read(struct dev *d) {
	return d->count;
}
int mk_a(struct dev *d) { int *b = kmalloc(4); if (!b) return -1; b[0] = 1; return 0; }
int mk_b(struct dev *d) { int *b = kmalloc(4); if (!b) return -1; b[0] = 1; return 0; }
int mk_c(struct dev *d) { int *b = kmalloc(4); b[0] = 1; return 0; }
int prune_me(struct dev *d) {
	if (d == NULL)
		panic("bad dev");
	return d->count;
}
`

func writeTree(t *testing.T, dir string, files map[string]string) {
	t.Helper()
	for name, content := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

func buildCLI(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "deviant")
	out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// TestDiffFlagsAffectOutput is the end-to-end guard for the PR 1
// regression fix (runDiff silently ignoring the analysis flags): each
// analysis flag must observably change -diff output through the real
// binary, and -no-memo — a pure performance knob — must not.
func TestDiffFlagsAffectOutput(t *testing.T) {
	bin := buildCLI(t)
	oldDir, newDir := t.TempDir(), t.TempDir()
	writeTree(t, oldDir, map[string]string{"drv.c": oldDrv, "include/k.h": diffHeader})
	writeTree(t, newDir, map[string]string{"drv.c": newDrv, "include/k.h": diffHeader})

	run := func(extra ...string) string {
		t.Helper()
		args := append([]string{"-diff", oldDir}, extra...)
		args = append(args, newDir)
		out, err := exec.Command(bin, args...).Output()
		if err != nil {
			t.Fatalf("deviant %s: %v\n%s", strings.Join(args, " "), err, out)
		}
		return string(out)
	}

	base := run()
	if !strings.Contains(base, "invariant violations") || !strings.Contains(base, "drv_read") {
		t.Fatalf("base diff output missing the dropped-null-check drift:\n%s", base)
	}
	if !strings.Contains(base, "reports in new version") {
		t.Fatalf("diff output missing the new version's report listing:\n%s", base)
	}

	driftHeader := func(out string) string { return strings.SplitN(out, "\n", 2)[0] }

	t.Run("checkers", func(t *testing.T) {
		sub := run("-checkers", "null")
		if sub == base {
			t.Error("-checkers null did not change diff output")
		}
		if driftHeader(sub) != driftHeader(base) {
			t.Errorf("drift list should not depend on checker selection:\n%s\nvs\n%s",
				driftHeader(sub), driftHeader(base))
		}
	})
	t.Run("p0", func(t *testing.T) {
		if run("-p0", "0.5") == base {
			t.Error("-p0 0.5 did not change diff output (z values should shift)")
		}
	})
	t.Run("no-prune", func(t *testing.T) {
		unpruned := run("-no-prune")
		if unpruned == base {
			t.Error("-no-prune did not change diff output")
		}
		if !strings.Contains(unpruned, "check-then-use") {
			t.Errorf("-no-prune should surface prune_me's panic-guarded deref as check-then-use:\n%s", unpruned)
		}
	})
	t.Run("no-memo", func(t *testing.T) {
		if run("-no-memo") != base {
			t.Error("-no-memo changed diff output; memoization must be output-invariant")
		}
	})
	t.Run("json", func(t *testing.T) {
		out := run("-json")
		if !strings.Contains(out, `"parse_errors":0`) || !strings.Contains(out, `"kind":"dropped-null-check"`) {
			t.Errorf("-json diff output malformed:\n%s", out)
		}
	})
}

// TestExitCodeOnParseErrors pins the CI contract: exit 0 on a clean
// corpus (even with bug reports), exit 3 when the frontend reported parse
// errors.
func TestExitCodeOnParseErrors(t *testing.T) {
	bin := buildCLI(t)

	clean := t.TempDir()
	writeTree(t, clean, map[string]string{"drv.c": oldDrv, "include/k.h": diffHeader})
	if out, err := exec.Command(bin, clean).CombinedOutput(); err != nil {
		t.Fatalf("clean corpus should exit 0: %v\n%s", err, out)
	}

	broken := t.TempDir()
	writeTree(t, broken, map[string]string{
		"bad.c":       "#include \"k.h\"\nint broken syntax @@@ ;\nint f(struct dev *d) { return d->count; }\n",
		"include/k.h": diffHeader,
	})
	err := exec.Command(bin, broken).Run()
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("broken corpus should exit non-zero, got %v", err)
	}
	if code := ee.ExitCode(); code != 3 {
		t.Errorf("broken corpus exit code = %d, want 3", code)
	}
}
