package main

import "testing"

func TestParseCheckers(t *testing.T) {
	c := parseCheckers("null,lockvar, pairing")
	if !c.Null || !c.LockVar || !c.Pairing {
		t.Errorf("parsed: %+v", c)
	}
	if c.UserPtr || c.Fail || c.IsErr || c.Intr || c.SecCheck || c.Reverse {
		t.Errorf("unrequested checkers enabled: %+v", c)
	}
}

func TestParseCheckersAllNames(t *testing.T) {
	c := parseCheckers("null,free,userptr,iserr,fail,lockvar,pairing,intr,seccheck,reverse")
	if !c.Null || !c.Free || !c.UserPtr || !c.IsErr || !c.Fail || !c.LockVar ||
		!c.Pairing || !c.Intr || !c.SecCheck || !c.Reverse {
		t.Errorf("parsed: %+v", c)
	}
}

func TestParseCheckersEmptyItems(t *testing.T) {
	c := parseCheckers("null,,")
	if !c.Null {
		t.Errorf("parsed: %+v", c)
	}
}
