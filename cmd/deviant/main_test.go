package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"deviant"
	"deviant/internal/fault"
)

func TestParseCheckers(t *testing.T) {
	c := parseCheckers("null,lockvar, pairing")
	if !c.Null || !c.LockVar || !c.Pairing {
		t.Errorf("parsed: %+v", c)
	}
	if c.UserPtr || c.Fail || c.IsErr || c.Intr || c.SecCheck || c.Reverse {
		t.Errorf("unrequested checkers enabled: %+v", c)
	}
}

func TestParseCheckersAllNames(t *testing.T) {
	c := parseCheckers("null,free,userptr,iserr,fail,lockvar,pairing,intr,seccheck,reverse")
	if !c.Null || !c.Free || !c.UserPtr || !c.IsErr || !c.Fail || !c.LockVar ||
		!c.Pairing || !c.Intr || !c.SecCheck || !c.Reverse {
		t.Errorf("parsed: %+v", c)
	}
}

func TestParseCheckersEmptyItems(t *testing.T) {
	c := parseCheckers("null,,")
	if !c.Null {
		t.Errorf("parsed: %+v", c)
	}
}

const statsSrc = `
#define NULL 0
void *kmalloc(int n);
void printk(const char *fmt, ...);
int f(int *p) {
	if (p == NULL)
		printk("%d", *p);
	int *b = kmalloc(8);
	if (!b)
		return -1;
	b[0] = 1;
	return 0;
}
int g(void) {
	int *b = kmalloc(4);
	b[0] = 2;
	return 0;
}
`

// TestStatsTableAndTrace exercises the -stats per-checker table and the
// -trace Chrome export end to end on an in-memory corpus.
func TestStatsTableAndTrace(t *testing.T) {
	opts := deviant.DefaultOptions()
	tr := deviant.NewTracer()
	opts.Tracer = tr
	res, err := deviant.Analyze(map[string]string{"a.c": statsSrc}, opts)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	printCheckerStats(&buf, res)
	out := buf.String()
	if !strings.Contains(out, "per-checker:") || !strings.Contains(out, "null") {
		t.Errorf("stats table missing checker rows:\n%s", out)
	}
	if !strings.Contains(out, "reports") || !strings.Contains(out, "visits") {
		t.Errorf("stats table missing columns:\n%s", out)
	}

	path := filepath.Join(t.TempDir(), "trace.json")
	writeTrace(path, tr)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var trace struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Dur  float64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &trace); err != nil {
		t.Fatalf("trace file is not trace-event JSON: %v", err)
	}
	names := map[string]bool{}
	for _, ev := range trace.TraceEvents {
		if ev.Ph != "X" {
			t.Errorf("unexpected event phase %q", ev.Ph)
		}
		if ev.Dur < 0 {
			t.Errorf("negative duration on %q", ev.Name)
		}
		names[ev.Name] = true
	}
	for _, want := range []string{"analyze", "frontend", "unit", "preprocess", "parse", "semantic", "cfg", "checker"} {
		if !names[want] {
			t.Errorf("trace missing %q span; got %v", want, names)
		}
	}

	// Without -trace the tracer is nil and writeTrace must not create a file.
	missing := filepath.Join(t.TempDir(), "none.json")
	writeTrace(missing, nil)
	if _, err := os.Stat(missing); !os.IsNotExist(err) {
		t.Error("writeTrace(nil) created a file")
	}
}

// TestEmitJSONQuarantine pins the degraded -json contract: clean runs
// emit byte-identical output to pre-fault-containment builds (omitempty
// fields, no record lines), degraded runs grow a summary flag plus one
// canonical {"unit","stage","cause"} line per record.
func TestEmitJSONQuarantine(t *testing.T) {
	srcs := map[string]string{"a.c": statsSrc}

	clean, err := deviant.Analyze(srcs, deviant.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	var cleanBuf bytes.Buffer
	if err := emitJSONTo(&cleanBuf, clean, 1, clean.Reports.Ranked(), 0, 0); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(cleanBuf.String(), "degraded") || strings.Contains(cleanBuf.String(), "quarantin") {
		t.Errorf("clean -json output mentions quarantine:\n%s", cleanBuf.String())
	}

	fault.Arm("cfg", "g")
	defer fault.Reset()
	deg, err := deviant.Analyze(srcs, deviant.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !deg.Degraded {
		t.Fatal("armed cfg trap did not degrade the run")
	}
	var buf bytes.Buffer
	if err := emitJSONTo(&buf, deg, 1, deg.Reports.Ranked(), 0, 0); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	var summary struct {
		Degraded    bool `json:"degraded"`
		Quarantined int  `json:"quarantined"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &summary); err != nil {
		t.Fatal(err)
	}
	if !summary.Degraded || summary.Quarantined != 1 {
		t.Fatalf("summary: %s", lines[0])
	}
	var rec struct {
		Unit  string `json:"unit"`
		Stage string `json:"stage"`
		Cause string `json:"cause"`
	}
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &rec); err != nil {
		t.Fatalf("last line is not a quarantine record: %v\n%s", err, lines[len(lines)-1])
	}
	if rec.Stage != "cfg" || rec.Unit != "g" {
		t.Errorf("record = %+v, want cfg g", rec)
	}

	var text bytes.Buffer
	printQuarantine(&text, deg)
	if !strings.Contains(text.String(), "degraded run: 1 quarantined") ||
		!strings.Contains(text.String(), "cfg g:") {
		t.Errorf("text quarantine section:\n%s", text.String())
	}
}
