package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"deviant"
)

func TestParseCheckers(t *testing.T) {
	c := parseCheckers("null,lockvar, pairing")
	if !c.Null || !c.LockVar || !c.Pairing {
		t.Errorf("parsed: %+v", c)
	}
	if c.UserPtr || c.Fail || c.IsErr || c.Intr || c.SecCheck || c.Reverse {
		t.Errorf("unrequested checkers enabled: %+v", c)
	}
}

func TestParseCheckersAllNames(t *testing.T) {
	c := parseCheckers("null,free,userptr,iserr,fail,lockvar,pairing,intr,seccheck,reverse")
	if !c.Null || !c.Free || !c.UserPtr || !c.IsErr || !c.Fail || !c.LockVar ||
		!c.Pairing || !c.Intr || !c.SecCheck || !c.Reverse {
		t.Errorf("parsed: %+v", c)
	}
}

func TestParseCheckersEmptyItems(t *testing.T) {
	c := parseCheckers("null,,")
	if !c.Null {
		t.Errorf("parsed: %+v", c)
	}
}

const statsSrc = `
#define NULL 0
void *kmalloc(int n);
void printk(const char *fmt, ...);
int f(int *p) {
	if (p == NULL)
		printk("%d", *p);
	int *b = kmalloc(8);
	if (!b)
		return -1;
	b[0] = 1;
	return 0;
}
int g(void) {
	int *b = kmalloc(4);
	b[0] = 2;
	return 0;
}
`

// TestStatsTableAndTrace exercises the -stats per-checker table and the
// -trace Chrome export end to end on an in-memory corpus.
func TestStatsTableAndTrace(t *testing.T) {
	opts := deviant.DefaultOptions()
	tr := deviant.NewTracer()
	opts.Tracer = tr
	res, err := deviant.Analyze(map[string]string{"a.c": statsSrc}, opts)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	printCheckerStats(&buf, res)
	out := buf.String()
	if !strings.Contains(out, "per-checker:") || !strings.Contains(out, "null") {
		t.Errorf("stats table missing checker rows:\n%s", out)
	}
	if !strings.Contains(out, "reports") || !strings.Contains(out, "visits") {
		t.Errorf("stats table missing columns:\n%s", out)
	}

	path := filepath.Join(t.TempDir(), "trace.json")
	writeTrace(path, tr)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var trace struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Dur  float64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &trace); err != nil {
		t.Fatalf("trace file is not trace-event JSON: %v", err)
	}
	names := map[string]bool{}
	for _, ev := range trace.TraceEvents {
		if ev.Ph != "X" {
			t.Errorf("unexpected event phase %q", ev.Ph)
		}
		if ev.Dur < 0 {
			t.Errorf("negative duration on %q", ev.Name)
		}
		names[ev.Name] = true
	}
	for _, want := range []string{"analyze", "frontend", "unit", "preprocess", "parse", "semantic", "cfg", "checker"} {
		if !names[want] {
			t.Errorf("trace missing %q span; got %v", want, names)
		}
	}

	// Without -trace the tracer is nil and writeTrace must not create a file.
	missing := filepath.Join(t.TempDir(), "none.json")
	writeTrace(missing, nil)
	if _, err := os.Stat(missing); !os.IsNotExist(err) {
		t.Error("writeTrace(nil) created a file")
	}
}
