// Command benchtab regenerates the paper's evaluation artifacts: every
// table, every figure, and the design ablations (the experiment index is
// DESIGN.md §3; measured outputs are recorded in EXPERIMENTS.md).
//
// Usage:
//
//	benchtab -all
//	benchtab -table 3
//	benchtab -fig 1
//	benchtab -ablations
//	benchtab -trajectory BENCH_trajectory.json
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"deviant/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchtab: ")

	all := flag.Bool("all", false, "regenerate everything")
	table := flag.Int("table", 0, "regenerate one table (1-6)")
	fig := flag.Int("fig", 0, "regenerate one figure (1-4)")
	ablations := flag.Bool("ablations", false, "run the design ablations")
	trajectory := flag.String("trajectory", "", "render the benchmark history a bench-json run appends to this file")
	flag.Parse()

	tables := map[int]func() (string, error){
		1: experiments.Table1, 2: experiments.Table2, 3: experiments.Table3,
		4: experiments.Table4, 5: experiments.Table5, 6: experiments.Table6,
		7: experiments.Table7,
	}
	figures := map[int]func() (string, error){
		1: experiments.Figure1, 2: experiments.Figure2,
		3: experiments.Figure3, 4: experiments.Figure4,
	}

	show := func(f func() (string, error)) {
		out, err := f()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(out)
	}

	switch {
	case *all:
		for i := 1; i <= 7; i++ {
			show(tables[i])
		}
		for i := 1; i <= 4; i++ {
			show(figures[i])
		}
		show(experiments.AblationPruning)
		show(experiments.AblationMacros)
	case *table != 0:
		f, ok := tables[*table]
		if !ok {
			log.Fatalf("no table %d (have 1-7)", *table)
		}
		show(f)
	case *fig != 0:
		f, ok := figures[*fig]
		if !ok {
			log.Fatalf("no figure %d (have 1-4)", *fig)
		}
		show(f)
	case *ablations:
		show(experiments.AblationPruning)
		show(experiments.AblationMacros)
	case *trajectory != "":
		show(func() (string, error) { return experiments.Trajectory(*trajectory) })
	default:
		fmt.Fprintln(os.Stderr, "usage: benchtab -all | -table N | -fig N | -ablations | -trajectory FILE")
		flag.PrintDefaults()
		os.Exit(2)
	}
}
