// Command benchjson converts `go test -bench` output on stdin into a
// JSON document on stdout, so benchmark numbers can be archived and
// diffed by machines instead of scraped from logs.
//
// Usage:
//
//	go test -run '^$' -bench 'Analyze' -benchmem . | benchjson > BENCH.json
//
// Two optional modes turn the snapshot into a perf-tracking pipeline:
//
//	-append FILE   additionally append a dated entry to the trajectory
//	               file FILE ({"entries": [...]}), creating it if absent.
//	               The snapshot still goes to stdout.
//	-gate FILE     compare stdin's results against the checked-in
//	               baseline snapshot FILE and exit non-zero if the gated
//	               benchmark's allocs/op regressed more than -max-regress
//	               (default 20%). Nothing is written.
//
// Only result lines are consumed ("BenchmarkName-8  10  12345 ns/op ...");
// everything else (goos/goarch headers, PASS, custom metrics it does not
// recognise) passes through to stderr untouched so failures stay visible.
// With -benchmem the B/op, allocs/op, and MB/s columns are captured too.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
	"time"
)

// result is one benchmark line. Name has the -<GOMAXPROCS> suffix
// stripped so the same benchmark compares across machines.
type result struct {
	Name       string  `json:"name"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	MBPerS     float64 `json:"mb_per_s,omitempty"`
	BPerOp     int64   `json:"bytes_per_op,omitempty"`
	AllocsOp   int64   `json:"allocs_per_op,omitempty"`
}

// parsed wraps a result with whether the memory columns were present: a
// zero allocs/op from -benchmem is meaningful (a genuinely
// allocation-free benchmark), a missing column is not gateable.
type parsed struct {
	result
	memSeen bool
}

// snapshot is the stdout document and the -gate baseline format.
type snapshot struct {
	Benchmarks []result `json:"benchmarks"`
}

// entry is one dated trajectory point; trajectory is the -append file.
type entry struct {
	Date       string   `json:"date"`
	Benchmarks []result `json:"benchmarks"`
}

type trajectory struct {
	Entries []entry `json:"entries"`
}

// benchLine matches e.g.
//
//	BenchmarkAnalyzeSerial-8  3  420163930 ns/op  162 MB/s  678 B/op  12 allocs/op
//
// The memory columns only appear under -benchmem; MB/s only when the
// benchmark calls b.SetBytes.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op(?:\s+([\d.]+) MB/s)?(?:\s+(\d+) B/op)?(?:\s+(\d+) allocs/op)?`)

// parseBench consumes go-test bench output from r, echoing unrecognised
// lines to passthru (normally stderr) so failures stay visible.
func parseBench(r io.Reader, passthru io.Writer) ([]parsed, error) {
	var results []parsed
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			fmt.Fprintln(passthru, line)
			continue
		}
		iters, _ := strconv.ParseInt(m[2], 10, 64)
		ns, _ := strconv.ParseFloat(m[3], 64)
		p := parsed{result: result{Name: m[1], Iterations: iters, NsPerOp: ns}}
		if m[4] != "" {
			p.MBPerS, _ = strconv.ParseFloat(m[4], 64)
		}
		if m[5] != "" {
			p.BPerOp, _ = strconv.ParseInt(m[5], 10, 64)
			p.memSeen = true
		}
		if m[6] != "" {
			p.AllocsOp, _ = strconv.ParseInt(m[6], 10, 64)
			p.memSeen = true
		}
		results = append(results, p)
	}
	return results, sc.Err()
}

func bare(ps []parsed) []result {
	out := make([]result, len(ps))
	for i, p := range ps {
		out[i] = p.result
	}
	return out
}

// appendTrajectory adds a dated entry to path, creating the file if it
// does not exist yet. Entries are only ever appended — the file is the
// project's perf history, so old points are never rewritten.
func appendTrajectory(path, date string, results []result) error {
	var tr trajectory
	if raw, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(raw, &tr); err != nil {
			return fmt.Errorf("%s: %v (refusing to clobber an unreadable trajectory)", path, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	tr.Entries = append(tr.Entries, entry{Date: date, Benchmarks: results})
	out, err := json.MarshalIndent(&tr, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}

// gate compares results against the baseline snapshot for one gated
// benchmark and returns an error if allocs/op regressed beyond
// maxRegress (a fraction: 0.20 allows +20%).
func gate(baseline snapshot, results []parsed, name string, maxRegress float64) (string, error) {
	var base *result
	for i := range baseline.Benchmarks {
		if baseline.Benchmarks[i].Name == name {
			base = &baseline.Benchmarks[i]
			break
		}
	}
	if base == nil {
		return "", fmt.Errorf("baseline does not contain %s", name)
	}
	var cur *parsed
	for i := range results {
		if results[i].Name == name {
			cur = &results[i]
			break
		}
	}
	if cur == nil {
		return "", fmt.Errorf("bench output does not contain %s", name)
	}
	if !cur.memSeen {
		return "", fmt.Errorf("bench output has no allocs/op for %s (run with -benchmem)", name)
	}
	limit := float64(base.AllocsOp) * (1 + maxRegress)
	if float64(cur.AllocsOp) > limit {
		return "", fmt.Errorf("%s allocs/op regressed: %d now vs %d baseline (limit %+.0f%%: %.0f)",
			name, cur.AllocsOp, base.AllocsOp, maxRegress*100, limit)
	}
	return fmt.Sprintf("bench gate ok: %s %d allocs/op vs baseline %d (limit %.0f)",
		name, cur.AllocsOp, base.AllocsOp, limit), nil
}

func main() {
	appendPath := flag.String("append", "", "also append a dated entry to this trajectory JSON file")
	gatePath := flag.String("gate", "", "compare against this baseline snapshot instead of emitting JSON")
	gateName := flag.String("bench", "BenchmarkAnalyzeParallel", "benchmark the -gate mode checks")
	maxRegress := flag.Float64("max-regress", 0.20, "allowed fractional allocs/op regression in -gate mode")
	date := flag.String("date", "", "entry date for -append (default: today, UTC)")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}

	results, err := parseBench(os.Stdin, os.Stderr)
	if err != nil {
		fail(err)
	}
	if len(results) == 0 {
		fail(fmt.Errorf("no benchmark lines on stdin"))
	}

	if *gatePath != "" {
		raw, err := os.ReadFile(*gatePath)
		if err != nil {
			fail(err)
		}
		var base snapshot
		if err := json.Unmarshal(raw, &base); err != nil {
			fail(fmt.Errorf("%s: %v", *gatePath, err))
		}
		msg, err := gate(base, results, *gateName, *maxRegress)
		if err != nil {
			fail(err)
		}
		fmt.Fprintln(os.Stderr, msg)
		return
	}

	if *appendPath != "" {
		d := *date
		if d == "" {
			d = time.Now().UTC().Format("2006-01-02")
		}
		if err := appendTrajectory(*appendPath, d, bare(results)); err != nil {
			fail(err)
		}
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(snapshot{Benchmarks: bare(results)}); err != nil {
		fail(err)
	}
}
