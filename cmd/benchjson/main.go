// Command benchjson converts `go test -bench` output on stdin into a
// JSON document on stdout, so benchmark numbers can be archived and
// diffed by machines instead of scraped from logs.
//
// Usage:
//
//	go test -run '^$' -bench 'Analyze' . | benchjson > BENCH.json
//
// Only result lines are consumed ("BenchmarkName-8  10  12345 ns/op ...");
// everything else (goos/goarch headers, PASS, custom metrics it does not
// recognise) passes through to stderr untouched so failures stay visible.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"regexp"
	"strconv"
)

// result is one benchmark line. Name has the -<GOMAXPROCS> suffix
// stripped so the same benchmark compares across machines.
type result struct {
	Name       string  `json:"name"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
}

// benchLine matches e.g. "BenchmarkAnalyzeSerial-8   3   420163930 ns/op".
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op`)

func main() {
	var results []result
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			fmt.Fprintln(os.Stderr, line)
			continue
		}
		iters, _ := strconv.ParseInt(m[2], 10, 64)
		ns, _ := strconv.ParseFloat(m[3], 64)
		results = append(results, result{Name: m[1], Iterations: iters, NsPerOp: ns})
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(map[string]any{"benchmarks": results}); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}
