package main

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
BenchmarkAnalyzeSerial-8       	       3	 141400000 ns/op	64300000 B/op	  222503 allocs/op
BenchmarkAnalyzeParallel-8     	       3	 135800000 ns/op	64300000 B/op	  222499 allocs/op
BenchmarkScanner-8             	     100	   1234567 ns/op	 512.34 MB/s	     128 B/op	       2 allocs/op
PASS
`

func parseSample(t *testing.T) []parsed {
	t.Helper()
	results, err := parseBench(strings.NewReader(sample), io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	return results
}

func TestParseBench(t *testing.T) {
	results := parseSample(t)
	if len(results) != 3 {
		t.Fatalf("parsed %d results, want 3", len(results))
	}
	par := results[1]
	if par.Name != "BenchmarkAnalyzeParallel" || par.NsPerOp != 135800000 ||
		par.AllocsOp != 222499 || !par.memSeen {
		t.Fatalf("parallel line parsed wrong: %+v", par)
	}
	sc := results[2]
	if sc.MBPerS != 512.34 || sc.BPerOp != 128 || sc.AllocsOp != 2 {
		t.Fatalf("scanner line parsed wrong: %+v", sc)
	}
}

func TestGate(t *testing.T) {
	results := parseSample(t)
	base := snapshot{Benchmarks: []result{
		{Name: "BenchmarkAnalyzeParallel", NsPerOp: 135800000, AllocsOp: 222499},
	}}

	if _, err := gate(base, results, "BenchmarkAnalyzeParallel", 0.20); err != nil {
		t.Fatalf("equal-to-baseline run must pass the gate: %v", err)
	}

	// 20% over baseline is 266,998.8 — a run at 270,000 must fail.
	regressed := parseSample(t)
	regressed[1].AllocsOp = 270000
	if _, err := gate(base, regressed, "BenchmarkAnalyzeParallel", 0.20); err == nil {
		t.Fatal("a 21% allocs/op regression must fail the gate")
	}
	// ...and 260,000 (within 20%) must pass.
	regressed[1].AllocsOp = 260000
	if _, err := gate(base, regressed, "BenchmarkAnalyzeParallel", 0.20); err != nil {
		t.Fatalf("a 17%% regression is within the 20%% budget: %v", err)
	}

	if _, err := gate(base, results, "BenchmarkNoSuch", 0.20); err == nil {
		t.Fatal("missing benchmark in baseline must be an error, not a pass")
	}

	noMem := parseSample(t)
	noMem[1].memSeen = false
	if _, err := gate(base, noMem, "BenchmarkAnalyzeParallel", 0.20); err == nil {
		t.Fatal("bench output without -benchmem columns must be an error")
	}
}

func TestAppendTrajectory(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_trajectory.json")
	r1 := []result{{Name: "BenchmarkAnalyzeParallel", Iterations: 1, NsPerOp: 575500000, AllocsOp: 1157636}}
	r2 := []result{{Name: "BenchmarkAnalyzeParallel", Iterations: 1, NsPerOp: 135800000, AllocsOp: 222499}}

	if err := appendTrajectory(path, "2026-08-01", r1); err != nil {
		t.Fatal(err)
	}
	if err := appendTrajectory(path, "2026-08-08", r2); err != nil {
		t.Fatal(err)
	}

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var tr trajectory
	if err := json.Unmarshal(raw, &tr); err != nil {
		t.Fatal(err)
	}
	if len(tr.Entries) != 2 {
		t.Fatalf("trajectory has %d entries, want 2 (append must not overwrite)", len(tr.Entries))
	}
	if tr.Entries[0].Date != "2026-08-01" || tr.Entries[0].Benchmarks[0].AllocsOp != 1157636 {
		t.Fatalf("first entry rewritten: %+v", tr.Entries[0])
	}
	if tr.Entries[1].Date != "2026-08-08" || tr.Entries[1].Benchmarks[0].AllocsOp != 222499 {
		t.Fatalf("second entry wrong: %+v", tr.Entries[1])
	}

	// A corrupt trajectory must be refused, not clobbered.
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := appendTrajectory(path, "2026-08-09", r2); err == nil {
		t.Fatal("appending to a corrupt trajectory must fail loudly")
	}
	if got, _ := os.ReadFile(path); string(got) != "{not json" {
		t.Fatal("failed append must leave the file untouched")
	}
}
