package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestJobsSmoke is `make jobs-smoke`: boot the daemon, run the async
// job flow end to end — submit with a tenant, poll, fetch the result —
// and bit-compare the job's result body against a synchronous
// /v1/analyze of the same tree at equal snapshot warmth. Then pin the
// baseline workflow on the same corpus through the CLI (write, then
// use → everything suppressed), check the job lifecycle landed in the
// run journal, and drain the daemon with SIGTERM.
func TestJobsSmoke(t *testing.T) {
	tmp := t.TempDir()
	daemon := buildBinary(t, tmp, "deviant/cmd/deviantd")
	cli := buildBinary(t, tmp, "deviant/cmd/deviant")
	journalPath := filepath.Join(tmp, "journal.jsonl")

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	cmd := exec.Command(daemon, "-addr", addr, "-journal", journalPath)
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	base := "http://" + addr
	var up bool
	for i := 0; i < 100; i++ {
		if resp, err := http.Get(base + "/healthz"); err == nil {
			resp.Body.Close()
			up = resp.StatusCode == http.StatusOK
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if !up {
		t.Fatal("daemon did not come up")
	}

	body, err := json.Marshal(map[string]any{"sources": map[string]string{
		"drv.c":            smokeSrc,
		"include/kernel.h": smokeHeader,
	}})
	if err != nil {
		t.Fatal(err)
	}
	do := func(method, path string, payload []byte, tenant string) (int, []byte) {
		t.Helper()
		var rd io.Reader
		if payload != nil {
			rd = bytes.NewReader(payload)
		}
		req, err := http.NewRequest(method, base+path, rd)
		if err != nil {
			t.Fatal(err)
		}
		if payload != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		if tenant != "" {
			req.Header.Set("X-Deviant-Tenant", tenant)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		data, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, data
	}

	// Two sync runs: the first warms the snapshot store, the second is
	// the byte-compare reference — the async job also runs warm, and the
	// response embeds the run's reuse counters, so only equal-warmth
	// bodies can be identical.
	if code, b := do("POST", "/v1/analyze", body, ""); code != http.StatusOK {
		t.Fatalf("cold analyze: %d: %s", code, b)
	}
	code, syncBody := do("POST", "/v1/analyze", body, "")
	if code != http.StatusOK {
		t.Fatalf("warm analyze: %d: %s", code, syncBody)
	}

	// Submit → poll → result.
	code, sub := do("POST", "/v1/jobs", body, "smoke-tenant")
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d: %s", code, sub)
	}
	var st struct {
		ID     string `json:"id"`
		Tenant string `json:"tenant"`
		State  string `json:"state"`
	}
	if err := json.Unmarshal(sub, &st); err != nil || st.ID == "" {
		t.Fatalf("submit status: %v: %s", err, sub)
	}
	if st.Tenant != "smoke-tenant" {
		t.Fatalf("tenant = %q", st.Tenant)
	}
	deadline := time.Now().Add(30 * time.Second)
	for st.State != "done" {
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %q", st.State)
		}
		code, poll := do("GET", "/v1/jobs/"+st.ID, nil, "")
		if code != http.StatusOK {
			t.Fatalf("poll: %d: %s", code, poll)
		}
		if err := json.Unmarshal(poll, &st); err != nil {
			t.Fatal(err)
		}
		switch st.State {
		case "failed", "canceled":
			t.Fatalf("job ended %q", st.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
	code, jobBody := do("GET", "/v1/jobs/"+st.ID+"/result", nil, "")
	if code != http.StatusOK {
		t.Fatalf("result: %d: %s", code, jobBody)
	}
	if !bytes.Equal(jobBody, syncBody) {
		t.Fatalf("async job result differs from synchronous /v1/analyze:\n--- job ---\n%s\n--- sync ---\n%s",
			jobBody, syncBody)
	}

	// Baseline round trip through the CLI on the same corpus: write,
	// then use — every finding is known, so the run reports zero.
	corpus := filepath.Join(tmp, "corpus")
	for name, content := range map[string]string{
		"drv.c":            smokeSrc,
		"include/kernel.h": smokeHeader,
	} {
		path := filepath.Join(corpus, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	blFile := filepath.Join(tmp, "smoke.baseline")
	if out, err := exec.Command(cli, "-baseline", "write", "-baseline-file", blFile, corpus).CombinedOutput(); err != nil {
		t.Fatalf("baseline write: %v\n%s", err, out)
	}
	out, err := exec.Command(cli, "-json", "-baseline", "use", "-baseline-file", blFile, corpus).Output()
	if err != nil {
		t.Fatalf("baseline use: %v", err)
	}
	var summary struct {
		Reports    int `json:"reports"`
		Suppressed int `json:"suppressed"`
	}
	if err := json.Unmarshal(out[:bytes.IndexByte(out, '\n')], &summary); err != nil {
		t.Fatal(err)
	}
	if summary.Reports != 0 || summary.Suppressed == 0 {
		t.Fatalf("baseline use: %d reports, %d suppressed; want full suppression", summary.Reports, summary.Suppressed)
	}

	// Drain. The journal is flushed per line, so it is complete once the
	// daemon exits.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("daemon exited uncleanly after SIGTERM: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not drain within 10s of SIGTERM")
	}

	// The job's lifecycle is in the run journal, keyed by its id.
	journal, err := os.ReadFile(journalPath)
	if err != nil {
		t.Fatal(err)
	}
	events := map[string]bool{}
	for _, line := range strings.Split(strings.TrimSpace(string(journal)), "\n") {
		var ev struct {
			Run   string `json:"run"`
			Event string `json:"event"`
		}
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("journal line not JSON: %s", line)
		}
		if ev.Run == st.ID {
			events[ev.Event] = true
		}
	}
	for _, want := range []string{"job_submitted", "job_start", "rank", "job_end"} {
		if !events[want] {
			t.Errorf("journal missing %s for job %s (got %v)", want, st.ID, events)
		}
	}
}
