package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestChaosFleetSmoke is `make chaos-fleet-smoke`: the robustness
// acceptance run. A 3-worker fleet serves the corpus while the
// coordinator's shard transport has one transient network fault armed
// against every worker (drop, corrupt, 2ms delay) — the retry layer must
// absorb all of them bit for bit against the CLI, without degrading.
// Then the fleet is reshaped twice, once through POST /v1/fleet/workers
// and once through a SIGHUP -workers-file reload, with byte-identical
// output under each bumped epoch. Finally the coordinator is SIGKILLed
// with a finished job and a just-submitted job in its durable -job-dir;
// the restarted coordinator must serve the finished result byte-
// identically and drive the interrupted job to the same bytes.
func TestChaosFleetSmoke(t *testing.T) {
	tmp := t.TempDir()
	daemon := buildBinary(t, tmp, "deviant/cmd/deviantd")
	cli := buildBinary(t, tmp, "deviant/cmd/deviant")

	corpus := filepath.Join(tmp, "corpus")
	for name, content := range fleetCorpus() {
		path := filepath.Join(corpus, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	cliOut, err := exec.Command(cli, "-json", corpus).Output()
	if err != nil {
		t.Fatalf("deviant -json: %v", err)
	}
	var golden []json.RawMessage
	sc := bufio.NewScanner(bytes.NewReader(cliOut))
	sc.Scan() // summary line
	for sc.Scan() {
		golden = append(golden, append(json.RawMessage(nil), sc.Bytes()...))
	}
	if len(golden) == 0 {
		t.Fatal("CLI found no reports in the fleet corpus")
	}

	urls := make([]string, 3)
	for i := range urls {
		addr := freeAddr(t)
		urls[i] = "http://" + addr
		startDaemon(t, daemon, addr, "-role", "worker")
	}
	workersFile := filepath.Join(tmp, "workers.txt")
	writeWorkers := func(us []string) {
		t.Helper()
		// The comment line pins comment-to-end-of-line parsing: none of
		// these words may come back as phantom workers.
		content := "# deviant fleet members, reloaded on SIGHUP\n" + strings.Join(us, "\n") + "\n"
		if err := os.WriteFile(workersFile, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	writeWorkers(urls)

	// One transient fault per worker, selected by its host:port (the
	// worker's name is its URL). Each has a one-call budget, so a single
	// retry — or the delay just elapsing — absorbs it.
	chaosSpec := fmt.Sprintf("drop|%s|1,corrupt|%s|1,delay|%s|2ms|1",
		strings.TrimPrefix(urls[0], "http://"),
		strings.TrimPrefix(urls[1], "http://"),
		strings.TrimPrefix(urls[2], "http://"))

	jobDir := filepath.Join(tmp, "jobs")
	coordAddr := freeAddr(t)
	coordArgs := []string{
		"-role", "coordinator", "-workers-file", workersFile,
		"-job-dir", jobDir, "-shard-retries", "2", "-chaos", chaosSpec,
	}
	coord := startDaemon(t, daemon, coordAddr, coordArgs...)
	base := "http://" + coordAddr

	do := func(method, path string, payload []byte) (int, []byte) {
		t.Helper()
		var rd io.Reader
		if payload != nil {
			rd = bytes.NewReader(payload)
		}
		req, err := http.NewRequest(method, base+path, rd)
		if err != nil {
			t.Fatal(err)
		}
		if payload != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		data, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, data
	}

	body, err := json.Marshal(map[string]any{"sources": fleetCorpus()})
	if err != nil {
		t.Fatal(err)
	}
	analyze := func(label string) {
		t.Helper()
		code, data := do("POST", "/v1/analyze", body)
		if code != http.StatusOK {
			t.Fatalf("%s: analyze status %d: %s", label, code, data)
		}
		var payload struct {
			Degraded bool              `json:"degraded"`
			Reports  []json.RawMessage `json:"reports"`
		}
		if err := json.Unmarshal(data, &payload); err != nil {
			t.Fatal(err)
		}
		if payload.Degraded {
			t.Errorf("%s: run degraded; transient chaos should be absorbed by retries", label)
		}
		if len(payload.Reports) != len(golden) {
			t.Fatalf("%s: fleet found %d reports, CLI %d", label, len(payload.Reports), len(golden))
		}
		for i := range payload.Reports {
			var a, b any
			if err := json.Unmarshal(payload.Reports[i], &a); err != nil {
				t.Fatal(err)
			}
			if err := json.Unmarshal(golden[i], &b); err != nil {
				t.Fatal(err)
			}
			na, _ := json.Marshal(a)
			nb, _ := json.Marshal(b)
			if !bytes.Equal(na, nb) {
				t.Errorf("%s: report %d differs:\nfleet: %s\ncli:   %s", label, i+1, na, nb)
			}
		}
	}
	epochOf := func() (epoch uint64, size int) {
		t.Helper()
		code, data := do("GET", "/v1/fleet/status", nil)
		if code != http.StatusOK {
			t.Fatalf("fleet status: %d: %s", code, data)
		}
		var st struct {
			Epoch uint64 `json:"epoch"`
			Size  int    `json:"size"`
		}
		if err := json.Unmarshal(data, &st); err != nil {
			t.Fatal(err)
		}
		return st.Epoch, st.Size
	}

	// Every armed fault fires during this first scatter; the run must
	// come out bit-identical to the CLI anyway.
	analyze("chaos cold")
	analyze("chaos warm")

	// Reshape through the API: shrink to two workers under epoch 2.
	req, err := json.Marshal(map[string]any{"workers": urls[:2]})
	if err != nil {
		t.Fatal(err)
	}
	code, data := do("POST", "/v1/fleet/workers", req)
	if code != http.StatusOK {
		t.Fatalf("fleet workers: %d: %s", code, data)
	}
	if epoch, size := epochOf(); epoch != 2 || size != 2 {
		t.Fatalf("post-shrink fleet %d workers at epoch %d, want 2 at 2", size, epoch)
	}
	analyze("epoch 2 (API shrink)")

	// An invalid replacement is rejected without disturbing the epoch.
	if code, data := do("POST", "/v1/fleet/workers", []byte(`{"workers":[]}`)); code != http.StatusBadRequest {
		t.Fatalf("empty worker set: %d: %s", code, data)
	}
	if epoch, _ := epochOf(); epoch != 2 {
		t.Fatalf("rejected update moved the epoch to %d", epoch)
	}

	// Reshape through SIGHUP: the workers file already lists all three,
	// so a reload regrows the fleet under epoch 3.
	if err := coord.Process.Signal(syscall.SIGHUP); err != nil {
		t.Fatal(err)
	}
	grown := false
	for i := 0; i < 100 && !grown; i++ {
		if epoch, size := epochOf(); epoch == 3 && size == 3 {
			grown = true
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if !grown {
		t.Fatal("SIGHUP did not reload the workers file to epoch 3")
	}
	analyze("epoch 3 (SIGHUP regrow)")

	// Durable jobs. Run one job to completion and keep its result bytes,
	// then submit a second and SIGKILL the coordinator before polling it:
	// whatever state the kill caught it in lives only in the job dir.
	submit := func() string {
		t.Helper()
		code, sub := do("POST", "/v1/jobs", body)
		if code != http.StatusAccepted {
			t.Fatalf("submit: %d: %s", code, sub)
		}
		var st struct {
			ID string `json:"id"`
		}
		if err := json.Unmarshal(sub, &st); err != nil || st.ID == "" {
			t.Fatalf("submit status: %v: %s", err, sub)
		}
		return st.ID
	}
	waitDone := func(id string) {
		t.Helper()
		deadline := time.Now().Add(30 * time.Second)
		for {
			code, poll := do("GET", "/v1/jobs/"+id, nil)
			if code != http.StatusOK {
				t.Fatalf("poll %s: %d: %s", id, code, poll)
			}
			var st struct {
				State string `json:"state"`
			}
			if err := json.Unmarshal(poll, &st); err != nil {
				t.Fatal(err)
			}
			switch st.State {
			case "done":
				return
			case "failed", "canceled":
				t.Fatalf("job %s ended %q", id, st.State)
			}
			if time.Now().After(deadline) {
				t.Fatalf("job %s stuck in %q", id, st.State)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	doneJob := submit()
	waitDone(doneJob)
	code, doneResult := do("GET", "/v1/jobs/"+doneJob+"/result", nil)
	if code != http.StatusOK {
		t.Fatalf("result: %d: %s", code, doneResult)
	}
	killedJob := submit()

	coord.Process.Kill()
	coord.Wait()
	coord = startDaemon(t, daemon, coordAddr, coordArgs...)

	// The finished job's result must be the exact bytes served before the
	// kill — recovered from disk, not recomputed.
	code, recovered := do("GET", "/v1/jobs/"+doneJob+"/result", nil)
	if code != http.StatusOK {
		t.Fatalf("recovered result: %d: %s", code, recovered)
	}
	if !bytes.Equal(recovered, doneResult) {
		t.Errorf("recovered job result differs from pre-kill bytes:\n--- recovered ---\n%s\n--- before ---\n%s",
			recovered, doneResult)
	}
	// The interrupted job is re-admitted and re-run; the workers stayed
	// warm across the coordinator restart, so its bytes must match the
	// first job's warm result exactly.
	waitDone(killedJob)
	code, rerun := do("GET", "/v1/jobs/"+killedJob+"/result", nil)
	if code != http.StatusOK {
		t.Fatalf("rerun result: %d: %s", code, rerun)
	}
	if !bytes.Equal(rerun, doneResult) {
		t.Errorf("re-run interrupted job diverged from the pre-kill result:\n--- rerun ---\n%s\n--- before ---\n%s",
			rerun, doneResult)
	}

	// And the fleet still answers identically after all of it.
	analyze("post-recovery")

	// Drain the restarted coordinator cleanly.
	if err := coord.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- coord.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("coordinator exited uncleanly after SIGTERM: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Error("coordinator did not drain within 10s of SIGTERM")
	}
}

// TestChaosFlagValidation pins the new flag contracts: -workers-list and
// -workers-file are mutually exclusive, a worker cannot take either, and
// a malformed -chaos spec is refused before the daemon binds.
func TestChaosFlagValidation(t *testing.T) {
	bin := buildBinary(t, t.TempDir(), "deviant/cmd/deviantd")
	wf := filepath.Join(t.TempDir(), "workers.txt")
	if err := os.WriteFile(wf, []byte("http://127.0.0.1:1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		args []string
		want string
	}{
		{[]string{"-workers-list", "http://127.0.0.1:1", "-workers-file", wf},
			"mutually exclusive"},
		{[]string{"-role", "worker", "-workers-file", wf}, "workers serve shards"},
		{[]string{"-workers-file", filepath.Join(t.TempDir(), "nope.txt")}, "workers-file"},
		{[]string{"-chaos", "drop"}, "want action|substr"},
		{[]string{"-chaos", "explode|w1"}, "unknown action"},
		{[]string{"-chaos", "delay|w1"}, "delay needs a duration"},
		{[]string{"-chaos", "delay|w1|fast"}, "bad duration"},
		{[]string{"-chaos", "drop|w1|-2"}, "bad budget"},
	} {
		var stderr bytes.Buffer
		cmd := exec.Command(bin, tc.args...)
		cmd.Stderr = &stderr
		err := cmd.Run()
		if _, ok := err.(*exec.ExitError); !ok {
			t.Fatalf("%v: want non-zero exit, got %v", tc.args, err)
		}
		if !strings.Contains(stderr.String(), tc.want) {
			t.Errorf("%v: stderr %q missing %q", tc.args, stderr.String(), tc.want)
		}
	}
}
