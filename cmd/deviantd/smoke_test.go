package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"syscall"
	"testing"
	"time"
)

// The quickstart corpus (examples/quickstart): the two §3.1 bugs plus a
// missing allocator check.
const smokeSrc = `
#include "kernel.h"
void capi_recv(struct capi_ctr *card, int id) {
	if (card == NULL) {
		printk("capidrv-%d: incoming call on unbound id %d!\n",
			card->contrnr, id);
		return;
	}
	card->count = card->count + 1;
}
int mxser_write(struct tty_struct *tty, int n) {
	struct mxser_struct *info = tty->driver_data;
	if (!tty || !info)
		return 0;
	return info->len + n;
}
int grow_queue(int n) {
	struct buf *b = kmalloc(n);
	b->len = n;
	return 0;
}
int grow_queue_checked(int n) {
	struct buf *b = kmalloc(n);
	if (!b)
		return -1;
	b->len = n;
	return 0;
}
`

const smokeHeader = `
#define NULL 0
struct capi_ctr { int contrnr; int count; };
struct tty_struct { void *driver_data; };
struct mxser_struct { int len; };
struct buf { int len; };
void *kmalloc(int n);
void printk(const char *fmt, ...);
`

func buildBinary(t *testing.T, dir, pkg string) string {
	t.Helper()
	bin := filepath.Join(dir, filepath.Base(pkg))
	out, err := exec.Command("go", "build", "-o", bin, pkg).CombinedOutput()
	if err != nil {
		t.Fatalf("go build %s: %v\n%s", pkg, err, out)
	}
	return bin
}

// TestServeSmoke is `make serve-smoke`: boot the daemon, POST the
// quickstart corpus twice (cold, then warm from the snapshot store),
// check both answers match the CLI bit for bit, and drain on SIGTERM.
func TestServeSmoke(t *testing.T) {
	tmp := t.TempDir()
	daemon := buildBinary(t, tmp, "deviant/cmd/deviantd")
	cli := buildBinary(t, tmp, "deviant/cmd/deviant")

	// The CLI's view of the corpus: the same tree on disk.
	corpus := filepath.Join(tmp, "corpus")
	for name, content := range map[string]string{
		"drv.c":            smokeSrc,
		"include/kernel.h": smokeHeader,
	} {
		path := filepath.Join(corpus, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	cliOut, err := exec.Command(cli, "-json", corpus).Output()
	if err != nil {
		t.Fatalf("deviant -json: %v", err)
	}
	var cliReports []json.RawMessage
	sc := bufio.NewScanner(bytes.NewReader(cliOut))
	sc.Scan() // first line is the summary; the rest are reports
	for sc.Scan() {
		cliReports = append(cliReports, append(json.RawMessage(nil), sc.Bytes()...))
	}
	if len(cliReports) == 0 {
		t.Fatal("CLI found no reports in the quickstart corpus")
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	cmd := exec.Command(daemon, "-addr", addr)
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	base := "http://" + addr
	var up bool
	for i := 0; i < 100; i++ {
		if resp, err := http.Get(base + "/healthz"); err == nil {
			resp.Body.Close()
			up = resp.StatusCode == http.StatusOK
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if !up {
		t.Fatal("daemon did not come up")
	}

	body, err := json.Marshal(map[string]any{"sources": map[string]string{
		"drv.c":            smokeSrc,
		"include/kernel.h": smokeHeader,
	}})
	if err != nil {
		t.Fatal(err)
	}
	post := func() (reports []json.RawMessage, snapshot struct {
		UnitsReused int `json:"units_reused"`
		UnitsParsed int `json:"units_parsed"`
	}) {
		t.Helper()
		resp, err := http.Post(base+"/v1/analyze", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var payload struct {
			Reports  []json.RawMessage `json:"reports"`
			Snapshot json.RawMessage   `json:"snapshot"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&payload); err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("analyze: status %d", resp.StatusCode)
		}
		if err := json.Unmarshal(payload.Snapshot, &snapshot); err != nil {
			t.Fatal(err)
		}
		return payload.Reports, snapshot
	}

	compare := func(label string, got []json.RawMessage) {
		t.Helper()
		if len(got) != len(cliReports) {
			t.Fatalf("%s: daemon found %d reports, CLI %d", label, len(got), len(cliReports))
		}
		for i := range got {
			var a, b any
			if err := json.Unmarshal(got[i], &a); err != nil {
				t.Fatal(err)
			}
			if err := json.Unmarshal(cliReports[i], &b); err != nil {
				t.Fatal(err)
			}
			na, _ := json.Marshal(a)
			nb, _ := json.Marshal(b)
			if !bytes.Equal(na, nb) {
				t.Errorf("%s: report %d differs:\ndaemon: %s\ncli:    %s", label, i+1, na, nb)
			}
		}
	}

	coldReports, coldSnap := post()
	compare("cold", coldReports)
	if coldSnap.UnitsParsed != 1 || coldSnap.UnitsReused != 0 {
		t.Errorf("cold run snapshot: %+v", coldSnap)
	}

	warmReports, warmSnap := post()
	compare("warm", warmReports)
	if warmSnap.UnitsReused != 1 || warmSnap.UnitsParsed != 0 {
		t.Errorf("warm run should reuse the lone unit: %+v", warmSnap)
	}

	// Drain: SIGTERM must flip healthz to 503 and exit 0.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("daemon exited uncleanly after SIGTERM: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Error("daemon did not drain within 10s of SIGTERM")
	}
}

// TestUsageExit pins that stray arguments exit 2, matching the CLI.
func TestUsageExit(t *testing.T) {
	bin := buildBinary(t, t.TempDir(), "deviant/cmd/deviantd")
	err := exec.Command(bin, "stray").Run()
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("stray arg should exit non-zero, got %v", err)
	}
	if code := ee.ExitCode(); code != 2 {
		t.Errorf("usage exit code = %d, want 2", code)
	}
}
