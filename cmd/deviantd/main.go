// Command deviantd serves the belief-inference checkers over HTTP as a
// long-running daemon with content-addressed incremental re-analysis:
// repeated requests over near-identical source trees re-run the frontend
// only for the units whose transitive input closure changed, while the
// ranked output stays byte-identical to a cold run.
//
// Usage:
//
//	deviantd [flags]
//
// Flags:
//
//	-addr a       listen address (default :8477)
//	-j N          worker-goroutine ceiling per request (0 = all CPUs);
//	              requests may ask for fewer via options.workers
//	-concurrent N analyses running at once (default 2)
//	-queue N      requests allowed to wait beyond the running ones before
//	              new ones get 429 (default 8)
//	-timeout d    per-request queue-wait + analysis budget (default 60s)
//	-job-queue N  async jobs allowed to wait across all tenants before
//	              POST /v1/jobs answers 429 (default 16)
//	-jobs-per-tenant N  one tenant's in-flight job cap, queued plus
//	              running (default 4)
//	-job-workers N  jobs executing concurrently (default -concurrent)
//	-snapshot N   snapshot store capacity in translation units
//	              (default 1024; higher = more reuse, more memory)
//	-cache-dir d  persist snapshot artifacts under this directory so a
//	              restarted daemon starts warm; entries are checksummed
//	              and corrupt ones are evicted and recomputed (empty =
//	              memory-only caching)
//	-job-dir d    persist every async job to a crash-safe log under this
//	              directory: a restarted daemon re-admits queued jobs,
//	              re-runs ones that were mid-flight, and serves completed
//	              results byte-identically (empty = jobs die with the
//	              process)
//	-debug-addr a also serve net/http/pprof on this address (off by
//	              default; bind to localhost, it is unauthenticated)
//	-role r       standalone (default), worker, or coordinator; worker
//	              and coordinator are the two halves of a fleet
//	              (DESIGN.md §12)
//	-workers-list comma-separated worker base URLs; implies
//	              -role coordinator and is rejected with -role worker
//	-workers-file file of worker base URLs (newline/comma-separated,
//	              # comments); like -workers-list but reloaded on SIGHUP,
//	              so the fleet can shrink or grow without a restart
//	-shard-timeout d  per-shard-call budget on the coordinator; a call
//	              that outlives it is retried (0 = the run's deadline)
//	-shard-retries N  shard-call retries after the first attempt
//	              (default 1); exhausted retries quarantine the shard's
//	              units, they never fail the run
//	-hedge d      after d with no shard response, race a hedged copy of
//	              the call to the next ring owner and take whichever
//	              valid response lands first (0 = off)
//	-chaos s      arm network failpoints on the shard transport from a
//	              spec like "drop|w1|1,delay|w2|5ms" (action|substr|param;
//	              testing only — the daemon then misbehaves on purpose)
//	-journal f    append one JSONL event per run-journal entry (run
//	              start, placement, shard lifecycle, quarantine, rank)
//	              to f, each line keyed by the run's request id
//	-probe d      (coordinator) probe worker /healthz+/metrics every d,
//	              driving the healthy-worker gauge, /v1/fleet/status and
//	              fleet_* federated metrics between runs (0 = off)
//	-version      print build identity (the same debug.ReadBuildInfo
//	              record /healthz serves) and exit
//
// Endpoints: POST /v1/analyze (?trace=1 embeds a Chrome trace of the
// run; shards across the fleet under -workers-list, and in that mode
// the trace stitches every worker's spans in as its own process lane),
// POST /v1/shard (the worker half of a distributed run), POST /v1/diff,
// GET /v1/rules, POST /v1/jobs + GET /v1/jobs/{id}[/result] + DELETE
// /v1/jobs/{id} (the async multi-tenant job API: queued analyses with
// per-tenant quotas and fair scheduling, results byte-identical to the
// synchronous path), GET /v1/fleet/status (coordinator mode: ring +
// per-worker health/build), POST /v1/fleet/workers (coordinator mode:
// replace the worker set in place — the response carries the new
// membership epoch), GET /healthz (liveness + build info),
// GET /metrics (Prometheus text, including go_* runtime self-metrics
// and fleet_* federated worker series on a coordinator) — see package
// deviant/internal/service.
//
// The daemon logs one JSON line per request to stderr (log/slog): request
// id, method, path, status, and duration. The same id appears on the
// "request" span of a ?trace=1 trace, tying logs to traces.
//
// On SIGTERM or SIGINT the daemon drains: /healthz flips to 503 so load
// balancers stop routing here, new analyses and job submissions are
// refused, already-accepted jobs run to completion, and the process
// exits once in-flight requests and jobs finish (or after the drain
// deadline, which cancels whatever is still pending).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"deviant/internal/client"
	"deviant/internal/dist"
	"deviant/internal/fault"
	"deviant/internal/obs"
	"deviant/internal/service"
)

// fleetDialer caches one HTTP client per worker URL. Live membership
// updates (SIGHUP, POST /v1/fleet/workers) reuse the cached client —
// and its pooled connections — for retained workers, and drain releases
// every socket the daemon ever dialed.
type fleetDialer struct {
	mu      sync.Mutex
	clients map[string]*client.Client
}

func newFleetDialer() *fleetDialer {
	return &fleetDialer{clients: make(map[string]*client.Client)}
}

func (d *fleetDialer) dial(name string) dist.ShardCaller {
	d.mu.Lock()
	defer d.mu.Unlock()
	c, ok := d.clients[name]
	if !ok {
		c = client.New(name)
		d.clients[name] = c
	}
	return c
}

func (d *fleetDialer) closeAll() {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, c := range d.clients {
		c.CloseIdleConnections()
	}
}

// splitWorkerList splits a comma- or whitespace-separated worker URL
// list, dropping empties; # starts a comment that runs to the end of
// its line (for the file form).
func splitWorkerList(s string) []string {
	var out []string
	for _, line := range strings.Split(s, "\n") {
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		for _, raw := range strings.FieldsFunc(line, func(r rune) bool {
			return r == ',' || r == '\r' || r == '\t' || r == ' '
		}) {
			if u := strings.TrimSpace(raw); u != "" {
				out = append(out, u)
			}
		}
	}
	return out
}

// buildWorkers maps URLs onto dist.Workers through the dialer cache
// (worker name = its URL, so ring placement is stable across
// coordinator restarts).
func buildWorkers(d *fleetDialer, urls []string) []dist.Worker {
	workers := make([]dist.Worker, 0, len(urls))
	for _, u := range urls {
		workers = append(workers, dist.Worker{Name: u, Caller: d.dial(u)})
	}
	return workers
}

// readWorkersFile loads the -workers-file member list: one or more
// worker URLs separated by newlines, commas or spaces; # starts a
// comment that runs to the end of its line.
func readWorkersFile(path string) ([]string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	urls := splitWorkerList(string(data))
	if len(urls) == 0 {
		return nil, fmt.Errorf("%s lists no workers", path)
	}
	return urls, nil
}

// armChaos parses and arms a -chaos spec: comma-separated entries of
// the form action|substr[|param], armed on the shard transport
// failpoint. action is drop, delay, corrupt, truncate or duplicate;
// substr selects workers by name substring; param is a duration for
// delay ("delay|w1|5ms", with an optional fourth |N budget) and a
// fire-count budget for the rest ("drop|w2|3", 0 or absent = every
// call).
func armChaos(spec string) error {
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		parts := strings.Split(entry, "|")
		if len(parts) < 2 {
			return fmt.Errorf("chaos entry %q: want action|substr[|param]", entry)
		}
		var f fault.NetFault
		switch parts[0] {
		case "drop":
			f.Action = fault.NetDrop
		case "delay":
			f.Action = fault.NetDelay
		case "corrupt":
			f.Action = fault.NetCorrupt
		case "truncate":
			f.Action = fault.NetTruncate
		case "duplicate":
			f.Action = fault.NetDuplicate
		default:
			return fmt.Errorf("chaos entry %q: unknown action %q", entry, parts[0])
		}
		if f.Action == fault.NetDelay {
			if len(parts) < 3 {
				return fmt.Errorf("chaos entry %q: delay needs a duration", entry)
			}
			d, err := time.ParseDuration(parts[2])
			if err != nil || d <= 0 {
				return fmt.Errorf("chaos entry %q: bad duration %q", entry, parts[2])
			}
			f.Delay = d
			if len(parts) > 3 {
				n, err := strconv.Atoi(parts[3])
				if err != nil || n < 0 {
					return fmt.Errorf("chaos entry %q: bad budget %q", entry, parts[3])
				}
				f.Times = n
			}
		} else if len(parts) > 2 && parts[2] != "" {
			n, err := strconv.Atoi(parts[2])
			if err != nil || n < 0 {
				return fmt.Errorf("chaos entry %q: bad budget %q", entry, parts[2])
			}
			f.Times = n
		}
		fault.ArmNet(dist.NetPoint, parts[1], f)
	}
	return nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("deviantd: ")

	addr := flag.String("addr", ":8477", "listen address")
	workers := flag.Int("j", 0, "worker-goroutine ceiling per request (0 = all CPUs)")
	concurrent := flag.Int("concurrent", 0, "analyses running at once (0 = 2)")
	queue := flag.Int("queue", 0, "waiting requests beyond the running ones (0 = 8)")
	timeout := flag.Duration("timeout", 0, "per-request budget (0 = 60s)")
	jobQueue := flag.Int("job-queue", 0, "async jobs waiting across all tenants (0 = 16)")
	jobsPerTenant := flag.Int("jobs-per-tenant", 0, "one tenant's in-flight job cap (0 = 4)")
	jobWorkers := flag.Int("job-workers", 0, "jobs executing concurrently (0 = -concurrent)")
	snapshotUnits := flag.Int("snapshot", 0, "snapshot store capacity in units (0 = 1024)")
	cacheDir := flag.String("cache-dir", "", "persistent snapshot cache directory (empty = memory only)")
	jobDir := flag.String("job-dir", "", "persist async jobs under this directory so a restart recovers them (empty = in-memory only)")
	drainWait := flag.Duration("drain", 30*time.Second, "max wait for in-flight requests on shutdown")
	debugAddr := flag.String("debug-addr", "", "also serve net/http/pprof on this address (off when empty)")
	role := flag.String("role", "", "standalone (empty), worker, or coordinator")
	workersList := flag.String("workers-list", "", "comma-separated worker base URLs (coordinator mode)")
	workersFile := flag.String("workers-file", "", "file listing worker base URLs, reloaded on SIGHUP (coordinator mode)")
	shardTimeout := flag.Duration("shard-timeout", 0, "per-shard-call budget on the coordinator (0 = the run's whole deadline)")
	shardRetries := flag.Int("shard-retries", 1, "shard-call retries after the first attempt")
	hedge := flag.Duration("hedge", 0, "send a hedged shard call to the next ring owner after this long (0 = off)")
	chaos := flag.String("chaos", "", "arm network failpoints on the shard transport, e.g. drop|w1|1,delay|w2|5ms (testing only)")
	journalPath := flag.String("journal", "", "append per-run JSONL journal events to this file (empty = off)")
	probeEvery := flag.Duration("probe", 0, "worker health-probe interval in coordinator mode (0 = off)")
	version := flag.Bool("version", false, "print build identity and exit")
	flag.Parse()
	if *version {
		b := obs.BuildInfo()
		dirty := ""
		if b.Dirty {
			dirty = " (dirty)"
		}
		fmt.Printf("deviantd %s %s %s%s\n", b.Version, b.GoVersion, b.Revision, dirty)
		return
	}
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: deviantd [flags]")
		flag.PrintDefaults()
		os.Exit(2)
	}
	switch *role {
	case "", "worker", "coordinator":
	default:
		log.Fatalf("unknown -role %q (want worker or coordinator)", *role)
	}
	if *workersList != "" && *workersFile != "" {
		log.Fatal("-workers-list and -workers-file are mutually exclusive")
	}
	if *role == "worker" && (*workersList != "" || *workersFile != "") {
		// A worker scattering to other workers would re-shard recursively;
		// the topology is one coordinator fanning out to leaf workers.
		log.Fatal("-role worker cannot take a worker list: workers serve shards, they do not scatter them")
	}
	if *role == "coordinator" && *workersList == "" && *workersFile == "" {
		log.Fatal("-role coordinator requires -workers-list or -workers-file")
	}

	logger := slog.New(slog.NewJSONHandler(os.Stderr, nil))
	var coord *dist.Coordinator
	var dialer *fleetDialer
	closeFleet := func() {}
	if *workersList != "" || *workersFile != "" {
		urls := splitWorkerList(*workersList)
		if *workersFile != "" {
			var err error
			urls, err = readWorkersFile(*workersFile)
			if err != nil {
				log.Fatalf("workers-file: %v", err)
			}
		}
		dialer = newFleetDialer()
		var err error
		coord, err = dist.NewCoordinator(buildWorkers(dialer, urls))
		if err != nil {
			log.Fatalf("worker list: %v", err)
		}
		closeFleet = dialer.closeAll
		coord.SetTransport(dist.TransportConfig{
			CallTimeout: *shardTimeout,
			Retries:     *shardRetries,
			HedgeAfter:  *hedge,
		})
		logger.Info("coordinator mode", "workers", coord.Size(), "epoch", coord.Epoch())
	}
	if *chaos != "" {
		if err := armChaos(*chaos); err != nil {
			log.Fatalf("chaos: %v", err)
		}
		logger.Warn("network chaos faults armed; this daemon will misbehave on purpose", "spec", *chaos)
	}
	// io.Writer-typed so an unset flag leaves the interface nil (a nil
	// *os.File in an io.Writer would read as journaling-on).
	var journalWriter io.Writer
	if *journalPath != "" {
		f, err := os.OpenFile(*journalPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			log.Fatalf("journal: %v", err)
		}
		defer f.Close()
		journalWriter = f
		logger.Info("journaling runs", "file", *journalPath)
	}
	cfg := service.Config{
		MaxWorkers:    *workers,
		MaxConcurrent: *concurrent,
		QueueDepth:    *queue,
		Timeout:       *timeout,
		JobQueueDepth: *jobQueue,
		JobsPerTenant: *jobsPerTenant,
		JobWorkers:    *jobWorkers,
		SnapshotUnits: *snapshotUnits,
		CacheDir:      *cacheDir,
		JobDir:        *jobDir,
		Logger:        logger,
		Coordinator:   coord,
		JournalWriter: journalWriter,
	}
	if dialer != nil {
		cfg.WorkerDialer = dialer.dial
	}
	srv := service.New(cfg)
	stopProber := func() {}
	if coord != nil && *probeEvery > 0 {
		stopProber = coord.StartProber(*probeEvery)
		logger.Info("probing workers", "interval", probeEvery.String())
	}
	httpSrv := &http.Server{Addr: *addr, Handler: srv}

	if *debugAddr != "" {
		// An explicit mux rather than http.DefaultServeMux: pprof is only
		// ever reachable on the opt-in debug address, never on -addr.
		dmux := http.NewServeMux()
		dmux.HandleFunc("/debug/pprof/", pprof.Index)
		dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			logger.Info("pprof listening", "addr", *debugAddr)
			if err := http.ListenAndServe(*debugAddr, dmux); err != nil {
				logger.Error("pprof server failed", "err", err)
			}
		}()
	}

	errc := make(chan error, 1)
	go func() {
		logger.Info("listening", "addr", *addr)
		errc <- httpSrv.ListenAndServe()
	}()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT, syscall.SIGHUP)

	var sig os.Signal
wait:
	for {
		select {
		case err := <-errc:
			log.Fatal(err)
		case sig = <-sigc:
			if sig != syscall.SIGHUP {
				break wait
			}
			// SIGHUP reloads -workers-file in place: the next run sees the
			// new member set under a bumped epoch; runs already in flight
			// keep the view they pinned at scatter time.
			if coord == nil || *workersFile == "" {
				logger.Info("ignoring SIGHUP: no -workers-file to reload")
				continue
			}
			urls, err := readWorkersFile(*workersFile)
			if err != nil {
				logger.Warn("workers-file reload failed, keeping current fleet", "err", err.Error())
				continue
			}
			if err := coord.SetWorkers(buildWorkers(dialer, urls)); err != nil {
				logger.Warn("workers-file reload rejected, keeping current fleet", "err", err.Error())
				continue
			}
			logger.Info("fleet workers reloaded", "workers", coord.Size(), "epoch", coord.Epoch())
		}
	}
	logger.Info("draining", "signal", sig.String(), "max_wait", drainWait.String())
	srv.SetDraining(true)
	ctx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	// Jobs drain first: accepted jobs run to completion (the drain
	// deadline cancels stragglers), and only then does the HTTP
	// listener close — a poller can still fetch its job's result
	// until the very end of the drain window.
	if err := srv.StopJobs(ctx); err != nil {
		logger.Warn("job drain incomplete, pending jobs canceled", "err", err.Error())
	}
	if err := httpSrv.Shutdown(ctx); err != nil {
		log.Fatalf("drain: %v", err)
	}
	if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("serve: %v", err)
	}
	stopProber()
	closeFleet()
	st := srv.Store().Stats()
	logger.Info("drained", "snapshot_unit_hits", st.UnitHits, "snapshot_unit_misses", st.UnitMisses)
}
