// Command deviantd serves the belief-inference checkers over HTTP as a
// long-running daemon with content-addressed incremental re-analysis:
// repeated requests over near-identical source trees re-run the frontend
// only for the units whose transitive input closure changed, while the
// ranked output stays byte-identical to a cold run.
//
// Usage:
//
//	deviantd [flags]
//
// Flags:
//
//	-addr a       listen address (default :8477)
//	-j N          worker-goroutine ceiling per request (0 = all CPUs);
//	              requests may ask for fewer via options.workers
//	-concurrent N analyses running at once (default 2)
//	-queue N      requests allowed to wait beyond the running ones before
//	              new ones get 429 (default 8)
//	-timeout d    per-request queue-wait + analysis budget (default 60s)
//	-job-queue N  async jobs allowed to wait across all tenants before
//	              POST /v1/jobs answers 429 (default 16)
//	-jobs-per-tenant N  one tenant's in-flight job cap, queued plus
//	              running (default 4)
//	-job-workers N  jobs executing concurrently (default -concurrent)
//	-snapshot N   snapshot store capacity in translation units
//	              (default 1024; higher = more reuse, more memory)
//	-cache-dir d  persist snapshot artifacts under this directory so a
//	              restarted daemon starts warm; entries are checksummed
//	              and corrupt ones are evicted and recomputed (empty =
//	              memory-only caching)
//	-debug-addr a also serve net/http/pprof on this address (off by
//	              default; bind to localhost, it is unauthenticated)
//	-role r       standalone (default), worker, or coordinator; worker
//	              and coordinator are the two halves of a fleet
//	              (DESIGN.md §12)
//	-workers-list comma-separated worker base URLs; implies
//	              -role coordinator and is rejected with -role worker
//	-journal f    append one JSONL event per run-journal entry (run
//	              start, placement, shard lifecycle, quarantine, rank)
//	              to f, each line keyed by the run's request id
//	-probe d      (coordinator) probe worker /healthz+/metrics every d,
//	              driving the healthy-worker gauge, /v1/fleet/status and
//	              fleet_* federated metrics between runs (0 = off)
//	-version      print build identity (the same debug.ReadBuildInfo
//	              record /healthz serves) and exit
//
// Endpoints: POST /v1/analyze (?trace=1 embeds a Chrome trace of the
// run; shards across the fleet under -workers-list, and in that mode
// the trace stitches every worker's spans in as its own process lane),
// POST /v1/shard (the worker half of a distributed run), POST /v1/diff,
// GET /v1/rules, POST /v1/jobs + GET /v1/jobs/{id}[/result] + DELETE
// /v1/jobs/{id} (the async multi-tenant job API: queued analyses with
// per-tenant quotas and fair scheduling, results byte-identical to the
// synchronous path), GET /v1/fleet/status (coordinator mode: ring +
// per-worker health/build), GET /healthz (liveness + build info),
// GET /metrics (Prometheus text, including go_* runtime self-metrics
// and fleet_* federated worker series on a coordinator) — see package
// deviant/internal/service.
//
// The daemon logs one JSON line per request to stderr (log/slog): request
// id, method, path, status, and duration. The same id appears on the
// "request" span of a ?trace=1 trace, tying logs to traces.
//
// On SIGTERM or SIGINT the daemon drains: /healthz flips to 503 so load
// balancers stop routing here, new analyses and job submissions are
// refused, already-accepted jobs run to completion, and the process
// exits once in-flight requests and jobs finish (or after the drain
// deadline, which cancels whatever is still pending).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"deviant/internal/client"
	"deviant/internal/dist"
	"deviant/internal/obs"
	"deviant/internal/service"
)

// buildCoordinator turns a comma-separated worker URL list into a
// coordinator over HTTP clients (worker name = its URL, so ring
// placement is stable across coordinator restarts). The returned close
// func releases the clients' pooled connections on drain.
func buildCoordinator(list string) (*dist.Coordinator, func(), error) {
	var workers []dist.Worker
	var clients []*client.Client
	for _, raw := range strings.Split(list, ",") {
		u := strings.TrimSpace(raw)
		if u == "" {
			continue
		}
		c := client.New(u)
		clients = append(clients, c)
		workers = append(workers, dist.Worker{Name: u, Caller: c})
	}
	coord, err := dist.NewCoordinator(workers)
	if err != nil {
		return nil, nil, err
	}
	closeAll := func() {
		for _, c := range clients {
			c.CloseIdleConnections()
		}
	}
	return coord, closeAll, nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("deviantd: ")

	addr := flag.String("addr", ":8477", "listen address")
	workers := flag.Int("j", 0, "worker-goroutine ceiling per request (0 = all CPUs)")
	concurrent := flag.Int("concurrent", 0, "analyses running at once (0 = 2)")
	queue := flag.Int("queue", 0, "waiting requests beyond the running ones (0 = 8)")
	timeout := flag.Duration("timeout", 0, "per-request budget (0 = 60s)")
	jobQueue := flag.Int("job-queue", 0, "async jobs waiting across all tenants (0 = 16)")
	jobsPerTenant := flag.Int("jobs-per-tenant", 0, "one tenant's in-flight job cap (0 = 4)")
	jobWorkers := flag.Int("job-workers", 0, "jobs executing concurrently (0 = -concurrent)")
	snapshotUnits := flag.Int("snapshot", 0, "snapshot store capacity in units (0 = 1024)")
	cacheDir := flag.String("cache-dir", "", "persistent snapshot cache directory (empty = memory only)")
	drainWait := flag.Duration("drain", 30*time.Second, "max wait for in-flight requests on shutdown")
	debugAddr := flag.String("debug-addr", "", "also serve net/http/pprof on this address (off when empty)")
	role := flag.String("role", "", "standalone (empty), worker, or coordinator")
	workersList := flag.String("workers-list", "", "comma-separated worker base URLs (coordinator mode)")
	journalPath := flag.String("journal", "", "append per-run JSONL journal events to this file (empty = off)")
	probeEvery := flag.Duration("probe", 0, "worker health-probe interval in coordinator mode (0 = off)")
	version := flag.Bool("version", false, "print build identity and exit")
	flag.Parse()
	if *version {
		b := obs.BuildInfo()
		dirty := ""
		if b.Dirty {
			dirty = " (dirty)"
		}
		fmt.Printf("deviantd %s %s %s%s\n", b.Version, b.GoVersion, b.Revision, dirty)
		return
	}
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: deviantd [flags]")
		flag.PrintDefaults()
		os.Exit(2)
	}
	switch *role {
	case "", "worker", "coordinator":
	default:
		log.Fatalf("unknown -role %q (want worker or coordinator)", *role)
	}
	if *role == "worker" && *workersList != "" {
		// A worker scattering to other workers would re-shard recursively;
		// the topology is one coordinator fanning out to leaf workers.
		log.Fatal("-role worker cannot take -workers-list: workers serve shards, they do not scatter them")
	}
	if *role == "coordinator" && *workersList == "" {
		log.Fatal("-role coordinator requires -workers-list")
	}

	logger := slog.New(slog.NewJSONHandler(os.Stderr, nil))
	var coord *dist.Coordinator
	closeFleet := func() {}
	if *workersList != "" {
		var err error
		coord, closeFleet, err = buildCoordinator(*workersList)
		if err != nil {
			log.Fatalf("workers-list: %v", err)
		}
		logger.Info("coordinator mode", "workers", coord.Size())
	}
	// io.Writer-typed so an unset flag leaves the interface nil (a nil
	// *os.File in an io.Writer would read as journaling-on).
	var journalWriter io.Writer
	if *journalPath != "" {
		f, err := os.OpenFile(*journalPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			log.Fatalf("journal: %v", err)
		}
		defer f.Close()
		journalWriter = f
		logger.Info("journaling runs", "file", *journalPath)
	}
	srv := service.New(service.Config{
		MaxWorkers:    *workers,
		MaxConcurrent: *concurrent,
		QueueDepth:    *queue,
		Timeout:       *timeout,
		JobQueueDepth: *jobQueue,
		JobsPerTenant: *jobsPerTenant,
		JobWorkers:    *jobWorkers,
		SnapshotUnits: *snapshotUnits,
		CacheDir:      *cacheDir,
		Logger:        logger,
		Coordinator:   coord,
		JournalWriter: journalWriter,
	})
	stopProber := func() {}
	if coord != nil && *probeEvery > 0 {
		stopProber = coord.StartProber(*probeEvery)
		logger.Info("probing workers", "interval", probeEvery.String())
	}
	httpSrv := &http.Server{Addr: *addr, Handler: srv}

	if *debugAddr != "" {
		// An explicit mux rather than http.DefaultServeMux: pprof is only
		// ever reachable on the opt-in debug address, never on -addr.
		dmux := http.NewServeMux()
		dmux.HandleFunc("/debug/pprof/", pprof.Index)
		dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			logger.Info("pprof listening", "addr", *debugAddr)
			if err := http.ListenAndServe(*debugAddr, dmux); err != nil {
				logger.Error("pprof server failed", "err", err)
			}
		}()
	}

	errc := make(chan error, 1)
	go func() {
		logger.Info("listening", "addr", *addr)
		errc <- httpSrv.ListenAndServe()
	}()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)

	select {
	case err := <-errc:
		log.Fatal(err)
	case sig := <-sigc:
		logger.Info("draining", "signal", sig.String(), "max_wait", drainWait.String())
		srv.SetDraining(true)
		ctx, cancel := context.WithTimeout(context.Background(), *drainWait)
		defer cancel()
		// Jobs drain first: accepted jobs run to completion (the drain
		// deadline cancels stragglers), and only then does the HTTP
		// listener close — a poller can still fetch its job's result
		// until the very end of the drain window.
		if err := srv.StopJobs(ctx); err != nil {
			logger.Warn("job drain incomplete, pending jobs canceled", "err", err.Error())
		}
		if err := httpSrv.Shutdown(ctx); err != nil {
			log.Fatalf("drain: %v", err)
		}
		if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("serve: %v", err)
		}
		stopProber()
		closeFleet()
		st := srv.Store().Stats()
		logger.Info("drained", "snapshot_unit_hits", st.UnitHits, "snapshot_unit_misses", st.UnitMisses)
	}
}
