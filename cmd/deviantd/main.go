// Command deviantd serves the belief-inference checkers over HTTP as a
// long-running daemon with content-addressed incremental re-analysis:
// repeated requests over near-identical source trees re-run the frontend
// only for the units whose transitive input closure changed, while the
// ranked output stays byte-identical to a cold run.
//
// Usage:
//
//	deviantd [flags]
//
// Flags:
//
//	-addr a       listen address (default :8477)
//	-j N          worker-goroutine ceiling per request (0 = all CPUs);
//	              requests may ask for fewer via options.workers
//	-concurrent N analyses running at once (default 2)
//	-queue N      requests allowed to wait beyond the running ones before
//	              new ones get 429 (default 8)
//	-timeout d    per-request queue-wait + analysis budget (default 60s)
//	-snapshot N   snapshot store capacity in translation units
//	              (default 1024; higher = more reuse, more memory)
//	-cache-dir d  persist snapshot artifacts under this directory so a
//	              restarted daemon starts warm; entries are checksummed
//	              and corrupt ones are evicted and recomputed (empty =
//	              memory-only caching)
//	-debug-addr a also serve net/http/pprof on this address (off by
//	              default; bind to localhost, it is unauthenticated)
//
// Endpoints: POST /v1/analyze (?trace=1 embeds a Chrome trace of the
// run), POST /v1/diff, GET /v1/rules, GET /healthz (liveness + build
// info), GET /metrics (Prometheus text) — see package
// deviant/internal/service.
//
// The daemon logs one JSON line per request to stderr (log/slog): request
// id, method, path, status, and duration. The same id appears on the
// "request" span of a ?trace=1 trace, tying logs to traces.
//
// On SIGTERM or SIGINT the daemon drains: /healthz flips to 503 so load
// balancers stop routing here, new analyses are refused, and the process
// exits once in-flight requests finish (or after the drain deadline).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"deviant/internal/service"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("deviantd: ")

	addr := flag.String("addr", ":8477", "listen address")
	workers := flag.Int("j", 0, "worker-goroutine ceiling per request (0 = all CPUs)")
	concurrent := flag.Int("concurrent", 0, "analyses running at once (0 = 2)")
	queue := flag.Int("queue", 0, "waiting requests beyond the running ones (0 = 8)")
	timeout := flag.Duration("timeout", 0, "per-request budget (0 = 60s)")
	snapshotUnits := flag.Int("snapshot", 0, "snapshot store capacity in units (0 = 1024)")
	cacheDir := flag.String("cache-dir", "", "persistent snapshot cache directory (empty = memory only)")
	drainWait := flag.Duration("drain", 30*time.Second, "max wait for in-flight requests on shutdown")
	debugAddr := flag.String("debug-addr", "", "also serve net/http/pprof on this address (off when empty)")
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: deviantd [flags]")
		flag.PrintDefaults()
		os.Exit(2)
	}

	logger := slog.New(slog.NewJSONHandler(os.Stderr, nil))
	srv := service.New(service.Config{
		MaxWorkers:    *workers,
		MaxConcurrent: *concurrent,
		QueueDepth:    *queue,
		Timeout:       *timeout,
		SnapshotUnits: *snapshotUnits,
		CacheDir:      *cacheDir,
		Logger:        logger,
	})
	httpSrv := &http.Server{Addr: *addr, Handler: srv}

	if *debugAddr != "" {
		// An explicit mux rather than http.DefaultServeMux: pprof is only
		// ever reachable on the opt-in debug address, never on -addr.
		dmux := http.NewServeMux()
		dmux.HandleFunc("/debug/pprof/", pprof.Index)
		dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			logger.Info("pprof listening", "addr", *debugAddr)
			if err := http.ListenAndServe(*debugAddr, dmux); err != nil {
				logger.Error("pprof server failed", "err", err)
			}
		}()
	}

	errc := make(chan error, 1)
	go func() {
		logger.Info("listening", "addr", *addr)
		errc <- httpSrv.ListenAndServe()
	}()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)

	select {
	case err := <-errc:
		log.Fatal(err)
	case sig := <-sigc:
		logger.Info("draining", "signal", sig.String(), "max_wait", drainWait.String())
		srv.SetDraining(true)
		ctx, cancel := context.WithTimeout(context.Background(), *drainWait)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			log.Fatalf("drain: %v", err)
		}
		if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("serve: %v", err)
		}
		st := srv.Store().Stats()
		logger.Info("drained", "snapshot_unit_hits", st.UnitHits, "snapshot_unit_misses", st.UnitMisses)
	}
}
