// Command deviantd serves the belief-inference checkers over HTTP as a
// long-running daemon with content-addressed incremental re-analysis:
// repeated requests over near-identical source trees re-run the frontend
// only for the units whose transitive input closure changed, while the
// ranked output stays byte-identical to a cold run.
//
// Usage:
//
//	deviantd [flags]
//
// Flags:
//
//	-addr a       listen address (default :8477)
//	-j N          worker-goroutine ceiling per request (0 = all CPUs);
//	              requests may ask for fewer via options.workers
//	-concurrent N analyses running at once (default 2)
//	-queue N      requests allowed to wait beyond the running ones before
//	              new ones get 429 (default 8)
//	-timeout d    per-request queue-wait + analysis budget (default 60s)
//	-snapshot N   snapshot store capacity in translation units
//	              (default 1024; higher = more reuse, more memory)
//
// Endpoints: POST /v1/analyze, POST /v1/diff, GET /v1/rules,
// GET /healthz, GET /metrics — see package deviant/internal/service.
//
// On SIGTERM or SIGINT the daemon drains: /healthz flips to 503 so load
// balancers stop routing here, new analyses are refused, and the process
// exits once in-flight requests finish (or after the drain deadline).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"deviant/internal/service"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("deviantd: ")

	addr := flag.String("addr", ":8477", "listen address")
	workers := flag.Int("j", 0, "worker-goroutine ceiling per request (0 = all CPUs)")
	concurrent := flag.Int("concurrent", 0, "analyses running at once (0 = 2)")
	queue := flag.Int("queue", 0, "waiting requests beyond the running ones (0 = 8)")
	timeout := flag.Duration("timeout", 0, "per-request budget (0 = 60s)")
	snapshotUnits := flag.Int("snapshot", 0, "snapshot store capacity in units (0 = 1024)")
	drainWait := flag.Duration("drain", 30*time.Second, "max wait for in-flight requests on shutdown")
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: deviantd [flags]")
		flag.PrintDefaults()
		os.Exit(2)
	}

	srv := service.New(service.Config{
		MaxWorkers:    *workers,
		MaxConcurrent: *concurrent,
		QueueDepth:    *queue,
		Timeout:       *timeout,
		SnapshotUnits: *snapshotUnits,
	})
	httpSrv := &http.Server{Addr: *addr, Handler: srv}

	errc := make(chan error, 1)
	go func() {
		log.Printf("listening on %s", *addr)
		errc <- httpSrv.ListenAndServe()
	}()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)

	select {
	case err := <-errc:
		log.Fatal(err)
	case sig := <-sigc:
		log.Printf("%s: draining (up to %s)", sig, *drainWait)
		srv.SetDraining(true)
		ctx, cancel := context.WithTimeout(context.Background(), *drainWait)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			log.Fatalf("drain: %v", err)
		}
		if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("serve: %v", err)
		}
		st := srv.Store().Stats()
		log.Printf("drained; snapshot store served %d unit hits, %d misses", st.UnitHits, st.UnitMisses)
	}
}
