package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// Two more units alongside smokeSrc so a fleet has something to shard:
// the same allocator and lock conventions, spread across files.
const fleetBeta = `
#include "kernel.h"
int beta_fill(int n) {
	struct buf *b = kmalloc(n);
	if (!b)
		return -1;
	b->len = n;
	return 0;
}
int beta_drain(struct buf *b) {
	if (!b)
		return -1;
	return b->len;
}
`

const fleetGamma = `
#include "kernel.h"
int gamma_push(int n) {
	struct buf *b = kmalloc(n);
	if (!b)
		return -1;
	b->len = n;
	return 0;
}
int gamma_peek(struct buf *b) {
	printk("peek %d\n", b->len);
	return b->len;
}
`

func fleetCorpus() map[string]string {
	return map[string]string{
		"drv.c":            smokeSrc,
		"beta.c":           fleetBeta,
		"gamma.c":          fleetGamma,
		"include/kernel.h": smokeHeader,
	}
}

// freeAddr reserves then releases one loopback port.
func freeAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// startDaemon boots one deviantd and waits for /healthz.
func startDaemon(t *testing.T, bin, addr string, extra ...string) *exec.Cmd {
	t.Helper()
	args := append([]string{"-addr", addr}, extra...)
	cmd := exec.Command(bin, args...)
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cmd.Process.Kill() })
	for i := 0; i < 150; i++ {
		if resp, err := http.Get("http://" + addr + "/healthz"); err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return cmd
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("daemon on %s did not come up", addr)
	return nil
}

// TestFleetSmoke is `make fleet-smoke`: boot 3 workers and 1
// coordinator as separate processes, run the corpus through the fleet
// cold and warm, and require the ranked reports to match the CLI bit
// for bit. Then kill one worker mid-fleet and require the re-scattered
// run to stay byte-identical — a dead worker costs latency, not
// correctness — and finally drain the coordinator cleanly.
func TestFleetSmoke(t *testing.T) {
	tmp := t.TempDir()
	daemon := buildBinary(t, tmp, "deviant/cmd/deviantd")
	cli := buildBinary(t, tmp, "deviant/cmd/deviant")

	corpus := filepath.Join(tmp, "corpus")
	for name, content := range fleetCorpus() {
		path := filepath.Join(corpus, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	cliOut, err := exec.Command(cli, "-json", corpus).Output()
	if err != nil {
		t.Fatalf("deviant -json: %v", err)
	}
	var golden []json.RawMessage
	sc := bufio.NewScanner(bytes.NewReader(cliOut))
	sc.Scan() // summary line
	for sc.Scan() {
		golden = append(golden, append(json.RawMessage(nil), sc.Bytes()...))
	}
	if len(golden) == 0 {
		t.Fatal("CLI found no reports in the fleet corpus")
	}

	workers := make([]*exec.Cmd, 3)
	urls := make([]string, 3)
	for i := range workers {
		addr := freeAddr(t)
		urls[i] = "http://" + addr
		workers[i] = startDaemon(t, daemon, addr, "-role", "worker")
	}
	coordAddr := freeAddr(t)
	journalPath := filepath.Join(tmp, "runs.jsonl")
	coord := startDaemon(t, daemon, coordAddr,
		"-role", "coordinator", "-workers-list", strings.Join(urls, ","),
		"-journal", journalPath, "-probe", "250ms")

	body, err := json.Marshal(map[string]any{"sources": fleetCorpus()})
	if err != nil {
		t.Fatal(err)
	}
	post := func() (reports []json.RawMessage, degraded bool, snapshot struct {
		UnitsReused int `json:"units_reused"`
		UnitsParsed int `json:"units_parsed"`
	}) {
		t.Helper()
		resp, err := http.Post("http://"+coordAddr+"/v1/analyze",
			"application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var payload struct {
			Degraded bool              `json:"degraded"`
			Reports  []json.RawMessage `json:"reports"`
			Snapshot json.RawMessage   `json:"snapshot"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&payload); err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("analyze: status %d", resp.StatusCode)
		}
		if err := json.Unmarshal(payload.Snapshot, &snapshot); err != nil {
			t.Fatal(err)
		}
		return payload.Reports, payload.Degraded, snapshot
	}
	compare := func(label string, got []json.RawMessage) {
		t.Helper()
		if len(got) != len(golden) {
			t.Fatalf("%s: fleet found %d reports, CLI %d", label, len(got), len(golden))
		}
		for i := range got {
			var a, b any
			if err := json.Unmarshal(got[i], &a); err != nil {
				t.Fatal(err)
			}
			if err := json.Unmarshal(golden[i], &b); err != nil {
				t.Fatal(err)
			}
			na, _ := json.Marshal(a)
			nb, _ := json.Marshal(b)
			if !bytes.Equal(na, nb) {
				t.Errorf("%s: report %d differs:\nfleet: %s\ncli:   %s", label, i+1, na, nb)
			}
		}
	}

	coldReports, coldDeg, coldSnap := post()
	compare("cold", coldReports)
	if coldDeg {
		t.Error("cold fleet run reported degraded")
	}
	if coldSnap.UnitsParsed != 3 || coldSnap.UnitsReused != 0 {
		t.Errorf("cold fleet snapshot: %+v, want 3 parsed across workers", coldSnap)
	}

	warmReports, _, warmSnap := post()
	compare("warm", warmReports)
	if warmSnap.UnitsReused != 3 || warmSnap.UnitsParsed != 0 {
		t.Errorf("warm fleet snapshot: %+v, want 3 reused", warmSnap)
	}

	// Observability plane, full fleet: an all-healthy status, a traced
	// run stitched into one Perfetto trace with a process lane per
	// serving worker, a run journal keyed by the pinned request id, and
	// federated worker metrics on the coordinator's /metrics.
	fleetStatus := func() (size, healthy int) {
		t.Helper()
		resp, err := http.Get("http://" + coordAddr + "/v1/fleet/status")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("fleet status: %d", resp.StatusCode)
		}
		var st struct {
			Size    int `json:"size"`
			Healthy int `json:"healthy"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		return st.Size, st.Healthy
	}
	if size, healthy := fleetStatus(); size != 3 || healthy != 3 {
		t.Errorf("fleet status %d/%d, want 3/3 healthy", healthy, size)
	}

	const runID = "smoke-r0001"
	treq, err := http.NewRequest("POST", "http://"+coordAddr+"/v1/analyze?trace=1", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	treq.Header.Set("Content-Type", "application/json")
	treq.Header.Set("X-Deviant-Request-Id", runID)
	tresp, err := http.DefaultClient.Do(treq)
	if err != nil {
		t.Fatal(err)
	}
	var traced struct {
		Reports []json.RawMessage `json:"reports"`
		Trace   json.RawMessage   `json:"trace"`
	}
	err = json.NewDecoder(tresp.Body).Decode(&traced)
	tresp.Body.Close()
	if err != nil || tresp.StatusCode != http.StatusOK {
		t.Fatalf("traced analyze: status %d err %v", tresp.StatusCode, err)
	}
	compare("traced", traced.Reports)

	var trace struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			Pid  int               `json:"pid"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(traced.Trace, &trace); err != nil {
		t.Fatalf("stitched trace is not valid Perfetto JSON: %v", err)
	}
	lanes := map[int]string{} // pid -> process name
	scatterTo := map[string]bool{}
	for _, e := range trace.TraceEvents {
		if e.Ph == "M" && e.Name == "process_name" {
			lanes[e.Pid] = e.Args["name"]
		}
		if e.Name == "scatter" {
			scatterTo[e.Args["worker"]] = true
		}
	}
	if lanes[1] != "coordinator" {
		t.Errorf("pid 1 lane is %q, want coordinator", lanes[1])
	}
	if len(lanes) != 1+len(scatterTo) || len(scatterTo) == 0 {
		t.Errorf("%d process lanes for %d scattered workers, want one lane per worker plus the coordinator (%v)",
			len(lanes), len(scatterTo), lanes)
	}
	workerLanes := map[string]bool{}
	for pid, name := range lanes {
		if pid == 1 {
			continue
		}
		if !scatterTo[name] {
			t.Errorf("trace lane %q is not a scattered worker (%v)", name, scatterTo)
		}
		workerLanes[name] = true
	}
	if len(workerLanes) != len(scatterTo) {
		t.Errorf("worker lanes %v do not cover scattered workers %v", workerLanes, scatterTo)
	}
	for _, e := range trace.TraceEvents {
		if e.Ph != "M" && lanes[e.Pid] == "" {
			t.Errorf("span %q on unnamed pid %d", e.Name, e.Pid)
		}
	}

	journalBytes, err := os.ReadFile(journalPath)
	if err != nil {
		t.Fatalf("journal: %v", err)
	}
	events := map[string]int{}
	for _, line := range strings.Split(strings.TrimSpace(string(journalBytes)), "\n") {
		var ev struct {
			Run   string `json:"run"`
			Event string `json:"event"`
		}
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("journal line not JSON: %v\n%s", err, line)
		}
		if ev.Run == "" {
			t.Fatalf("journal line without run id: %s", line)
		}
		if ev.Run == runID {
			events[ev.Event]++
		}
	}
	for _, want := range []string{"run_start", "placement", "shard_sent", "shard_returned", "merge", "rank", "run_end"} {
		if events[want] == 0 {
			t.Errorf("journal for %s missing %q event: %v", runID, want, events)
		}
	}

	mresp, err := http.Get("http://" + coordAddr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics := new(bytes.Buffer)
	metrics.ReadFrom(mresp.Body)
	mresp.Body.Close()
	for _, want := range []string{
		`fleet_go_goroutines{worker="http://`,
		"deviantd_fleet_healthy_workers 3",
		"deviantd_build_info{",
	} {
		if !strings.Contains(metrics.String(), want) {
			t.Errorf("coordinator /metrics missing %q", want)
		}
	}

	// Kill one worker. Its shard re-scatters to the survivors, so the
	// output stays byte-identical and the run is not degraded.
	workers[1].Process.Kill()
	workers[1].Wait()
	lostReports, lostDeg, _ := post()
	compare("one worker down", lostReports)
	if lostDeg {
		t.Error("losing 1 of 3 workers degraded the run; re-scatter should absorb it")
	}
	// The failed scatter (or the prober, whichever sees it first) marks
	// the dead worker down in fleet status; give the 250ms probe loop a
	// few ticks in case the dead worker owned no units this run.
	downSeen := false
	for i := 0; i < 100 && !downSeen; i++ {
		if size, healthy := fleetStatus(); size == 3 && healthy <= 2 {
			downSeen = true
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if !downSeen {
		t.Error("fleet status never marked the killed worker down")
	}

	// Drain the coordinator: SIGTERM exits 0 with in-flight work done.
	if err := coord.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- coord.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("coordinator exited uncleanly after SIGTERM: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Error("coordinator did not drain within 10s of SIGTERM")
	}
}

// TestVersionFlag pins -version: exit 0, one line, the same build
// identity /healthz serves.
func TestVersionFlag(t *testing.T) {
	bin := buildBinary(t, t.TempDir(), "deviant/cmd/deviantd")
	out, err := exec.Command(bin, "-version").Output()
	if err != nil {
		t.Fatalf("-version: %v", err)
	}
	line := strings.TrimSpace(string(out))
	if !strings.HasPrefix(line, "deviantd ") || !strings.Contains(line, "go1.") {
		t.Errorf("-version output %q, want 'deviantd <version> <goversion> ...'", line)
	}
	if strings.Count(string(out), "\n") != 1 {
		t.Errorf("-version should print exactly one line, got %q", out)
	}
}

// TestFleetFlagValidation pins the role/workers-list contract: a worker
// must not scatter, a coordinator must have a fleet, and unknown roles
// are refused — all before binding the listen address.
func TestFleetFlagValidation(t *testing.T) {
	bin := buildBinary(t, t.TempDir(), "deviant/cmd/deviantd")
	for _, tc := range []struct {
		args []string
		want string
	}{
		{[]string{"-role", "worker", "-workers-list", "http://127.0.0.1:1"},
			"workers serve shards"},
		{[]string{"-role", "coordinator"}, "requires -workers-list"},
		{[]string{"-role", "boss"}, "unknown -role"},
		{[]string{"-workers-list", " , ,"}, "no workers"},
	} {
		var stderr bytes.Buffer
		cmd := exec.Command(bin, tc.args...)
		cmd.Stderr = &stderr
		err := cmd.Run()
		if _, ok := err.(*exec.ExitError); !ok {
			t.Fatalf("%v: want non-zero exit, got %v", tc.args, err)
		}
		if !strings.Contains(stderr.String(), tc.want) {
			t.Errorf("%v: stderr %q missing %q", tc.args, stderr.String(), tc.want)
		}
	}
}
