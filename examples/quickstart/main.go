// Command quickstart is the smallest possible deviant session: feed the
// analyzer a buggy C fragment (the two §3.1 bugs from the paper plus a
// missing allocator check) and print the ranked error reports.
package main

import (
	"fmt"
	"log"

	"deviant"
)

const src = `
#include "kernel.h"

/* §3.1, capidrv.c: the diagnostic dereferences the pointer it just
 * proved to be null. */
void capi_recv(struct capi_ctr *card, int id) {
	if (card == NULL) {
		printk("capidrv-%d: incoming call on unbound id %d!\n",
			card->contrnr, id);
		return;
	}
	card->count = card->count + 1;
}

/* §3.1, mxser.c: the initializer dereferences tty before the null
 * check. Either the check is impossible or the dereference crashes. */
int mxser_write(struct tty_struct *tty, int n) {
	struct mxser_struct *info = tty->driver_data;
	if (!tty || !info)
		return 0;
	return info->len + n;
}

/* The allocator can fail; this caller forgot the check. */
int grow_queue(int n) {
	struct buf *b = kmalloc(n);
	b->len = n;
	return 0;
}

int grow_queue_checked(int n) {
	struct buf *b = kmalloc(n);
	if (!b)
		return -1;
	b->len = n;
	return 0;
}
`

const header = `
#define NULL 0
struct capi_ctr { int contrnr; int count; };
struct tty_struct { void *driver_data; };
struct mxser_struct { int len; };
struct buf { int len; };
void *kmalloc(int n);
void printk(const char *fmt, ...);
`

func main() {
	res, err := deviant.Analyze(map[string]string{
		"driver.c":         src,
		"include/kernel.h": header,
	}, deviant.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("analyzed %d functions, %d lines\n\n", res.FuncCount, res.LineCount)
	for i, r := range res.Reports.Ranked() {
		fmt.Printf("%2d. %s\n", i+1, r.String())
	}
}
