// Command lockdiscipline walks through the paper's Figure 1 example in
// detail: how the statistical lock checker turns raw accesses into
// (variable, lock) beliefs, counts evidence, promotes single-variable
// critical sections to MUST beliefs, and ranks the violations.
package main

import (
	"fmt"
	"log"

	"deviant"
)

// The paper's Figure 1, structurally verbatim.
const figure1 = `
typedef int lock_t;
lock_t l;
int a, b;

void foo(void) {
	lock(l);
	a = a + b;	/* MAY: a,b protected by l */
	unlock(l);
	b = b + 1;	/* MUST: b not protected by l */
}

void bar(void) {
	lock(l);
	a = a + 1;	/* MAY: a protected by l */
	unlock(l);
}

void baz(void) {
	a = a + 1;	/* MAY: a protected by l (backward belief from unlock) */
	unlock(l);
	b = b - 1;	/* MUST: b not protected by l */
	a = a / 5;	/* MUST: a not protected by l */
}
`

func main() {
	opts := deviant.DefaultOptions()
	opts.Checks = deviant.Checks{LockVar: true}
	res, err := deviant.Analyze(map[string]string{"figure1.c": figure1}, opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Figure 1 walk-through: is variable v protected by lock l?")
	fmt.Println()
	fmt.Println("derived beliefs (checks = accesses, errors = unprotected):")
	for _, b := range res.LockBindings {
		must := "MAY"
		if b.Must {
			must = "MUST (sole variable of bar's critical section)"
		}
		fmt.Printf("  (%s, %s): %d checks, %d errors, z=%.2f  [%s]\n",
			b.Var, b.Lock, b.Checks, b.Errors, b.Z, must)
	}
	fmt.Println()
	fmt.Println("paper's expectation: (a,l)=4 checks/1 error, (b,l)=3 checks/2 errors")
	fmt.Println()
	fmt.Println("ranked violations (most credible belief first):")
	for i, r := range res.Reports.Ranked() {
		fmt.Printf("  %d. %s\n", i+1, r.String())
	}
	fmt.Println()
	fmt.Println("note how b's violations rank below a's: b is indifferently")
	fmt.Println("protected, so its unprotected uses are probably coincidence,")
	fmt.Println("while a's single deviation is a probable bug.")
}
