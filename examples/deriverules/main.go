// Command deriverules demonstrates automatic rule derivation — the
// paper's core claim that checking information can be extracted from the
// source itself. It analyzes a generated kernel tree and prints, for each
// of the six Table 2 templates, the derived slot instances with their
// evidence and z ranking, including the junk at the bottom that the
// ranking correctly buries.
package main

import (
	"fmt"
	"log"

	"deviant"
	"deviant/internal/corpus"
)

func main() {
	c := corpus.Generate(corpus.Linux247())
	res, err := deviant.Analyze(c.Files, deviant.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("derived rules from %d functions (%d lines), no specifications given\n\n",
		res.FuncCount, res.LineCount)

	fmt.Println("template: <a> must be paired with <b>")
	for i, p := range res.Pairs {
		if i >= 6 {
			fmt.Printf("  ... %d more candidates, ranked down to z=%.2f\n",
				len(res.Pairs)-6, res.Pairs[len(res.Pairs)-1].Z)
			break
		}
		fmt.Printf("  %-18s %-18s %4d/%-4d z=%6.2f boost=%.1f\n",
			p.A, p.B, p.Examples(), p.Checks, p.Z, p.Boost)
	}

	fmt.Println("\ntemplate: can routine <f> fail?")
	for i, d := range res.CanFail {
		if i >= 5 {
			break
		}
		fmt.Printf("  %-24s %4d/%-4d z=%6.2f\n", d.Func, d.Examples(), d.Checks, d.Z)
	}
	fmt.Println("inverse (routines that never fail):")
	for i, d := range res.CanFailNever {
		if i >= 3 {
			break
		}
		fmt.Printf("  %-24s checked %d of %d uses  z=%6.2f\n",
			d.Func, d.Examples(), d.Checks, d.Z)
	}

	fmt.Println("\ntemplate: does lock <l> protect <v>?")
	for i, b := range res.LockBindings {
		if i >= 5 {
			break
		}
		must := ""
		if b.Must {
			must = "  [MUST: sole variable of a critical section]"
		}
		fmt.Printf("  %-28s by %-28s %4d/%-4d z=%6.2f%s\n",
			b.Var, b.Lock, b.Examples(), b.Checks, b.Z, must)
	}

	fmt.Println("\ntemplate: does security check <y> protect <x>?")
	for i, d := range res.SecChecks {
		if i >= 3 {
			break
		}
		fmt.Printf("  %s guards %-24s %4d/%-4d z=%6.2f\n",
			d.Check, d.Action, d.Examples(), d.Checks, d.Z)
	}

	fmt.Println("\ntemplate: does <a> reverse <b> on error paths?")
	for i, r := range res.Reversals {
		if i >= 3 {
			break
		}
		fmt.Printf("  %-18s undone by %-18s %4d/%-4d z=%6.2f\n",
			r.Forward, r.Undo, r.Examples(), r.Checks, r.Z)
	}

	fmt.Println("\ntemplate: must <f> be called with interrupts disabled?")
	for i, d := range res.IntrFuncs {
		if i >= 3 {
			break
		}
		fmt.Printf("  %-24s %4d/%-4d z=%6.2f\n", d.Func, d.Examples(), d.Checks, d.Z)
	}
}
