// Command versiondiff demonstrates the §4.2 cross-version consistency
// check: "relate the same routine to itself through time across different
// versions ... check that any modifications do not violate invariants
// implied by the old code." It diffs two versions of a small driver in
// which a refactor silently dropped three different safety disciplines.
package main

import (
	"fmt"
	"log"

	"deviant"
)

const header = `
#define NULL 0
struct req { int len; char *data; };
struct dev { int state; };
void *kmalloc(int n);
int copy_from_user(void *to, const void *from, int n);
void printk(const char *fmt, ...);
`

const v1 = `
#include "dev.h"

int dev_submit(struct dev *d, struct req *r) {
	if (r == NULL)
		return -1;
	if (d == NULL)
		return -1;
	d->state = r->len;
	return 0;
}

int dev_write(struct dev *d, char *ubuf, int n) {
	char kbuf[64];
	if (copy_from_user(kbuf, ubuf, n))
		return -1;
	d->state = kbuf[0];
	return 0;
}

int dev_grow(int n) {
	struct req *r = kmalloc(n);
	if (r == NULL)
		return -1;
	r->len = n;
	return 0;
}
`

// v2 is the "cleaned up" version: each function lost an invariant the old
// one established.
const v2 = `
#include "dev.h"

int dev_submit(struct dev *d, struct req *r) {
	if (d == NULL)
		return -1;
	d->state = r->len;
	return 0;
}

int dev_write(struct dev *d, char *ubuf, int n) {
	d->state = ubuf[0];
	return 0;
}

int dev_grow(int n) {
	struct req *r = kmalloc(n);
	r->len = n;
	return 0;
}
`

func main() {
	drifts, _, err := deviant.Diff(
		map[string]string{"dev.c": v1, "include/dev.h": header},
		map[string]string{"dev.c": v2, "include/dev.h": header},
		deviant.DefaultOptions(),
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("invariants implied by v1 that v2 violates:")
	for _, d := range drifts {
		fmt.Printf("  [%s] %s: %s (at %s)\n", d.Kind, d.Func, d.Msg, d.Pos)
	}
	if len(drifts) == 0 {
		fmt.Println("  none — versions are belief-consistent")
	}
}
