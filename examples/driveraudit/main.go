// Command driveraudit audits a kernel-style source tree it has never
// seen before — the paper's headline scenario. Point it at a directory of
// .c files (searched recursively, with an include/ subdirectory for
// headers), or run it bare to audit a generated Linux-2.4.7-like tree.
//
//	driveraudit [-top 25] [dir]
package main

import (
	"flag"
	"fmt"
	"io/fs"
	"log"
	"path/filepath"
	"sort"
	"strings"

	"deviant"
	"deviant/internal/corpus"
	"deviant/internal/cpp"
)

func main() {
	top := flag.Int("top", 25, "ranked reports to print")
	flag.Parse()

	var (
		res *deviant.Result
		err error
	)
	if flag.NArg() == 0 {
		fmt.Println("no directory given; auditing a generated linux-2.4.7-like tree")
		c := corpus.Generate(corpus.Linux247())
		res, err = deviant.Analyze(c.Files, deviant.DefaultOptions())
	} else {
		dir := flag.Arg(0)
		var units []string
		walkErr := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() && strings.HasSuffix(path, ".c") {
				rel, relErr := filepath.Rel(dir, path)
				if relErr != nil {
					return relErr
				}
				units = append(units, rel)
			}
			return nil
		})
		if walkErr != nil {
			log.Fatal(walkErr)
		}
		sort.Strings(units)
		res, err = deviant.AnalyzeFS(cpp.DirFS(dir), units, deviant.DefaultOptions())
	}
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("functions: %d   lines: %d   interface classes: %d\n",
		res.FuncCount, res.LineCount, len(res.Prog.InterfaceClasses()))
	if len(res.ParseErrors) > 0 {
		fmt.Printf("frontend diagnostics: %d (first: %v)\n", len(res.ParseErrors), res.ParseErrors[0])
	}

	fmt.Println("\nderived rules (no a priori knowledge):")
	if len(res.Pairs) > 0 {
		p := res.Pairs[0]
		fmt.Printf("  pairing:   %s must be paired with %s (%d/%d, z=%.2f)\n",
			p.A, p.B, p.Examples(), p.Checks, p.Z)
	}
	if len(res.CanFail) > 0 {
		d := res.CanFail[0]
		fmt.Printf("  can fail:  %s (%d/%d callers check it, z=%.2f)\n",
			d.Func, d.Examples(), d.Checks, d.Z)
	}
	if len(res.LockBindings) > 0 {
		lb := res.LockBindings[0]
		fmt.Printf("  locking:   %s protects %s (%d/%d, z=%.2f)\n",
			lb.Lock, lb.Var, lb.Examples(), lb.Checks, lb.Z)
	}

	ranked := res.Reports.Ranked()
	fmt.Printf("\n%d error reports; top %d by rank:\n", len(ranked), *top)
	for i, r := range ranked {
		if i >= *top {
			break
		}
		fmt.Printf("%3d. %s\n", i+1, r.String())
	}
}
