module deviant

go 1.22
