package deviant

// Determinism property tests for the parallel pipeline: analysis output
// must be byte-identical for every worker count. The pipeline shards work
// over contiguous spans of the function list and folds the shards back in
// order, so reports, derived-rule tables, and engine statistics may not
// depend on scheduling. These tests pin that property on two experiment
// corpora across Workers ∈ {1, 4, 8}.

import (
	"fmt"
	"reflect"
	"sort"
	"strings"
	"testing"

	"deviant/internal/corpus"
)

// renderReports produces a canonical textual form of the ranked reports.
// Reports are compared rendered rather than with DeepEqual because MUST
// reports carry Z = NaN, and NaN != NaN would make DeepEqual fail even on
// identical output.
func renderReports(res *Result) string {
	var sb strings.Builder
	for _, r := range res.Reports.Ranked() {
		sb.WriteString(r.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

func analyzeWithWorkers(t *testing.T, files map[string]string, workers int) *Result {
	res, _ := analyzeTraced(t, files, workers)
	return res
}

// analyzeTraced runs Analyze with a tracer attached, so determinism tests
// can compare the emitted span sets across worker counts.
func analyzeTraced(t *testing.T, files map[string]string, workers int) (*Result, *Tracer) {
	t.Helper()
	opts := DefaultOptions()
	opts.Workers = workers
	tr := NewTracer()
	opts.Tracer = tr
	res, err := Analyze(files, opts)
	if err != nil {
		t.Fatalf("Analyze(workers=%d): %v", workers, err)
	}
	return res, tr
}

// spanSet reduces a trace to its scheduling-independent identity: the
// multiset of (name, attrs) pairs, ignoring timestamps and lanes. Span
// *identity* must not depend on the worker count — only when and where a
// span ran may differ.
func spanSet(tr *Tracer) map[string]int {
	set := map[string]int{}
	for _, s := range tr.Spans() {
		attrs := make([]string, len(s.Attrs))
		for i, a := range s.Attrs {
			attrs[i] = a.Key + "=" + a.Value
		}
		sort.Strings(attrs)
		set[s.Name+"{"+strings.Join(attrs, ",")+"}"]++
	}
	return set
}

// diffSpanSets renders the keys whose counts differ, for test failure
// messages.
func diffSpanSets(a, b map[string]int) string {
	keys := map[string]bool{}
	for k := range a {
		keys[k] = true
	}
	for k := range b {
		keys[k] = true
	}
	var sb strings.Builder
	for _, k := range sortedKeys(keys) {
		if a[k] != b[k] {
			fmt.Fprintf(&sb, "  %s: %d vs %d\n", k, a[k], b[k])
		}
	}
	return sb.String()
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func checkSameResults(t *testing.T, name string, serial, parallel *Result, workers int) {
	t.Helper()
	if got, want := renderReports(parallel), renderReports(serial); got != want {
		t.Errorf("%s: ranked reports differ between workers=1 and workers=%d", name, workers)
	}
	if serial.FuncCount != parallel.FuncCount || serial.LineCount != parallel.LineCount {
		t.Errorf("%s: corpus accounting differs: funcs %d vs %d, lines %d vs %d",
			name, serial.FuncCount, parallel.FuncCount, serial.LineCount, parallel.LineCount)
	}
	if len(serial.ParseErrors) != len(parallel.ParseErrors) {
		t.Errorf("%s: parse error count differs: %d vs %d",
			name, len(serial.ParseErrors), len(parallel.ParseErrors))
	}
	// Derived-rule tables must match exactly — these are the paper's
	// statistical inferences, and z scores are finite here (or -Inf,
	// which compares equal to itself), so DeepEqual is sound.
	derived := []struct {
		what             string
		serial, parallel any
	}{
		{"pairs", serial.Pairs, parallel.Pairs},
		{"can-fail", serial.CanFail, parallel.CanFail},
		{"can-fail-never", serial.CanFailNever, parallel.CanFailNever},
		{"lock bindings", serial.LockBindings, parallel.LockBindings},
		{"iserr funcs", serial.IsErrFuncs, parallel.IsErrFuncs},
		{"intr funcs", serial.IntrFuncs, parallel.IntrFuncs},
		{"sec checks", serial.SecChecks, parallel.SecChecks},
		{"reversals", serial.Reversals, parallel.Reversals},
	}
	for _, d := range derived {
		if !reflect.DeepEqual(d.serial, d.parallel) {
			t.Errorf("%s: derived %s table differs between workers=1 and workers=%d",
				name, d.what, workers)
		}
	}
	if !reflect.DeepEqual(serial.EngineStats, parallel.EngineStats) {
		t.Errorf("%s: engine stats differ between workers=1 and workers=%d:\n  serial:   %v\n  parallel: %v",
			name, workers, serial.EngineStats, parallel.EngineStats)
	}
}

// TestParallelDeterminism proves the acceptance property: Analyze with
// Workers 1, 4, and 8 produces identical ranked reports and identical
// derived-rule tables on the experiment corpora.
func TestParallelDeterminism(t *testing.T) {
	corpora := []struct {
		name string
		spec corpus.Spec
	}{
		{"linux-2.4.1", corpus.Linux241()},
		{"openbsd-2.8", corpus.OpenBSD28()},
	}
	for _, tc := range corpora {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			files := corpus.Generate(tc.spec).Files
			serial, serialTrace := analyzeTraced(t, files, 1)
			if serial.Reports.Len() == 0 {
				t.Fatal("serial run produced no reports; corpus is not exercising the checkers")
			}
			serialSpans := spanSet(serialTrace)
			for _, stage := range []string{"analyze{units=", "frontend{}", "unit{", "preprocess{}", "parse{}", "semantic{}", "cfg{", "checker{", "engine{"} {
				found := false
				for k := range serialSpans {
					if strings.HasPrefix(k, stage) {
						found = true
						break
					}
				}
				if !found {
					t.Errorf("trace missing a %q span", stage)
				}
			}
			for _, workers := range []int{4, 8} {
				par, parTrace := analyzeTraced(t, files, workers)
				checkSameResults(t, tc.name, serial, par, workers)
				// The trace's span identities — every (name, attrs) pair and
				// its multiplicity — must be worker-count-independent; only
				// timing and lane placement may differ.
				if parSpans := spanSet(parTrace); !reflect.DeepEqual(serialSpans, parSpans) {
					t.Errorf("%s: span sets differ between workers=1 and workers=%d:\n%s",
						tc.name, workers, diffSpanSets(serialSpans, parSpans))
				}
			}
		})
	}
}

// TestParallelDeterminismRepeated reruns the same parallel configuration
// several times: scheduling varies between runs, output may not.
func TestParallelDeterminismRepeated(t *testing.T) {
	files := corpus.Generate(corpus.Linux241()).Files
	want := renderReports(analyzeWithWorkers(t, files, 8))
	for i := 0; i < 3; i++ {
		if got := renderReports(analyzeWithWorkers(t, files, 8)); got != want {
			t.Fatalf("run %d: parallel output varies across runs with workers=8", i)
		}
	}
}

// TestTimingPopulated checks that the per-stage timing breakdown is
// filled in by Analyze (satellite for the -stats flag).
func TestTimingPopulated(t *testing.T) {
	files := corpus.Generate(corpus.Linux241()).Files
	res := analyzeWithWorkers(t, files, 2)
	tm := res.Timing
	if tm.Total <= 0 || tm.Frontend <= 0 || tm.Semantic <= 0 || tm.CFG <= 0 {
		t.Errorf("stage timings not populated: %+v", tm)
	}
	if tm.Preprocess <= 0 || tm.Parse <= 0 {
		t.Errorf("frontend sub-timings not populated: preprocess=%v parse=%v", tm.Preprocess, tm.Parse)
	}
	if len(tm.Checkers) == 0 {
		t.Error("no per-checker timings recorded")
	}
	out := tm.String()
	for _, want := range []string{"frontend", "semantic", "cfg", "total"} {
		if !strings.Contains(out, want) {
			t.Errorf("Timing.String() missing %q:\n%s", want, out)
		}
	}
}
